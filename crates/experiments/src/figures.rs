//! One driver per paper figure/listing. Each returns a [`Figure`] whose
//! `render()` prints the same rows/series the paper reports.

use dcn_sim::time::secs;
use dcn_topology::{
    bgp_router_config, mrmtp_fabric_config, Addressing, ClosParams, ConfigStats, Fabric,
    FailureCase, FourTierParams,
};

use crate::fabric::{build_sim, Stack};
use crate::parallel::run_matrix;
use crate::runspec::RunSpec;
use crate::scenario::{ScenarioResult, Timing, TrafficDir};
use crate::table;

/// The steady-state run the keep-alive figures share (no failure, short
/// measurement tail).
fn steady_state(stack: Stack, seed: u64) -> ScenarioResult {
    RunSpec::new(ClosParams::two_pod(), stack).seeded(seed).timed(Timing::steady()).run()
}

/// A printable result table.
#[derive(Clone, Debug)]
pub struct Figure {
    pub title: String,
    pub headers: Vec<&'static str>,
    pub rows: Vec<Vec<String>>,
}

impl Figure {
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            self.title,
            table::render(&self.headers, &self.rows)
        )
    }
}

/// One cell of the failure-experiment matrix.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    pub topo: &'static str,
    pub params: ClosParams,
    pub stack: Stack,
    pub tc: FailureCase,
    pub result: ScenarioResult,
}

/// The paper's full failure matrix: {2-PoD, 4-PoD} × {MR-MTP, BGP/ECMP,
/// BGP/ECMP/BFD} × {TC1..TC4}, with traffic flowing in `dir`. Runs in
/// parallel across CPUs.
pub fn failure_matrix(dir: TrafficDir, seed: u64) -> Vec<MatrixCell> {
    let topos: [(&'static str, ClosParams); 2] = [
        ("2-PoD", ClosParams::two_pod()),
        ("4-PoD", ClosParams::four_pod()),
    ];
    let mut specs = Vec::new();
    let mut meta = Vec::new();
    for (name, params) in topos {
        for stack in Stack::ALL {
            for tc in FailureCase::ALL {
                specs.push(
                    RunSpec::new(params, stack)
                        .failing(tc)
                        .with_traffic(dir)
                        .seeded(seed),
                );
                meta.push((name, params, stack, tc));
            }
        }
    }
    let results = run_matrix(specs);
    meta.into_iter()
        .zip(results)
        .map(|((topo, params, stack, tc), result)| MatrixCell { topo, params, stack, tc, result })
        .collect()
}

fn matrix_figure(
    title: &str,
    cells: &[MatrixCell],
    value_header: &'static str,
    value: impl Fn(&ScenarioResult) -> String,
) -> Figure {
    let rows = cells
        .iter()
        .map(|c| {
            vec![
                c.topo.to_string(),
                c.stack.label().to_string(),
                c.tc.label().to_string(),
                value(&c.result),
            ]
        })
        .collect();
    Figure {
        title: title.to_string(),
        headers: vec!["topology", "stack", "case", value_header],
        rows,
    }
}

/// Fig. 4: network convergence time (ms).
pub fn fig4_convergence(cells: &[MatrixCell]) -> Figure {
    matrix_figure(
        "Fig. 4 — Convergence time after interface failure",
        cells,
        "convergence_ms",
        |r| table::ms(r.convergence_ms),
    )
}

/// Fig. 5: blast radius (routers updating destination-routing state).
pub fn fig5_blast_radius(cells: &[MatrixCell]) -> Figure {
    matrix_figure(
        "Fig. 5 — Blast radius (routers with routing-table updates)",
        cells,
        "routers",
        |r| r.blast_radius.to_string(),
    )
}

/// Fig. 6: control overhead in bytes of update messages.
pub fn fig6_control_overhead(cells: &[MatrixCell]) -> Figure {
    matrix_figure(
        "Fig. 6 — Control overhead (bytes of update messages)",
        cells,
        "bytes",
        |r| r.control_bytes.to_string(),
    )
}

/// Figs. 7/8: packets lost for the monitored flow.
pub fn fig_packet_loss(cells: &[MatrixCell], near: bool) -> Figure {
    let title = if near {
        "Fig. 7 — Packet loss, traffic sender close to failure (rack 11 → rack 14)"
    } else {
        "Fig. 8 — Packet loss, traffic sender away from failure (rack 14 → rack 11)"
    };
    matrix_figure(title, cells, "packets_lost", |r| {
        r.loss.map(|l| l.lost().to_string()).unwrap_or_else(|| "-".into())
    })
}

/// Figs. 9–10: steady-state keep-alive overhead per stack.
pub fn fig9_keepalive(seed: u64) -> Figure {
    let mut rows = Vec::new();
    for stack in Stack::ALL {
        let r = steady_state(stack, seed);
        rows.push(vec![
            stack.label().to_string(),
            format!("{:.0}", r.keepalive.avg_frame_len),
            r.keepalive.frames.to_string(),
            format!("{:.0}", r.keepalive.bytes_per_sec),
        ]);
    }
    Figure {
        title: "Figs. 9–10 — Steady-state keep-alive overhead (2-PoD, 2 s window)\n\
                (frame sizes: MR-MTP hello 60 B; BFD 66 B; BGP keepalive 85 B)"
            .to_string(),
        headers: vec!["stack", "avg_frame_B", "frames", "bytes_per_sec"],
        rows,
    }
}

/// §VII-G (Listings 1–2): configuration burden comparison.
pub fn config_comparison() -> Figure {
    let mut rows = Vec::new();
    for (name, params) in [("2-PoD", ClosParams::two_pod()), ("4-PoD", ClosParams::four_pod())] {
        let fabric = Fabric::build(params);
        let addr = Addressing::new(&fabric);
        let bgp = ConfigStats::for_bgp(&fabric, &addr, true);
        let mtp = ConfigStats::for_mrmtp(&fabric);
        rows.push(vec![
            name.to_string(),
            "BGP/ECMP/BFD".into(),
            bgp.routers.to_string(),
            bgp.total_lines.to_string(),
            bgp.total_bytes.to_string(),
        ]);
        rows.push(vec![
            name.to_string(),
            "MR-MTP".into(),
            mtp.routers.to_string(),
            mtp.total_lines.to_string(),
            mtp.total_bytes.to_string(),
        ]);
    }
    Figure {
        title: "Listings 1–2 — Configuration burden (whole fabric)".to_string(),
        headers: vec!["topology", "stack", "routers", "config_lines", "config_bytes"],
        rows,
    }
}

/// §VII-H (Listings 3 & 5): routing-table size comparison at converged
/// routers.
pub fn table_size_comparison(seed: u64) -> Figure {
    let params = ClosParams::four_pod();
    // BGP: tier-2 spine.
    let mut bgp = build_sim(params, Stack::BgpEcmp, seed, &[]);
    bgp.sim.run_until(secs(5));
    let spine = bgp.bgp(bgp.fabric.pod_spine(0, 0));
    let bgp_routes = spine.rib().route_count();
    let bgp_paths = spine.rib().path_count();
    let bgp_bytes = spine.rib().approx_bytes();
    // MR-MTP: top spine.
    let mut mtp = build_sim(params, Stack::Mrmtp, seed, &[]);
    mtp.sim.run_until(secs(5));
    let top = mtp.mrmtp(mtp.fabric.top_spine(0));
    let vid_entries = top.vid_table().own_entry_count();
    let vid_bytes = top.vid_table().approx_bytes();
    Figure {
        title: "Listings 3 & 5 — Routing state at a converged router (4-PoD)".to_string(),
        headers: vec!["stack", "router", "entries", "paths", "approx_bytes"],
        rows: vec![
            vec![
                "BGP/ECMP".into(),
                "S-1-1 (tier-2 spine)".into(),
                bgp_routes.to_string(),
                bgp_paths.to_string(),
                bgp_bytes.to_string(),
            ],
            vec![
                "MR-MTP".into(),
                "T-1 (top spine)".into(),
                vid_entries.to_string(),
                vid_entries.to_string(),
                vid_bytes.to_string(),
            ],
        ],
    }
}

/// Render the raw Listings 1/2/3/5 artifacts from converged 4-PoD runs.
pub fn render_listings(seed: u64) -> String {
    let params = ClosParams::four_pod();
    let fabric = Fabric::build(params);
    let addr = Addressing::new(&fabric);
    let mut out = String::new();
    out.push_str("==== Listing 1: BGP configuration at router T-1 ====\n");
    out.push_str(&bgp_router_config(&fabric, &addr, fabric.top_spine(0), true));
    out.push_str("\n==== Listing 2: MR-MTP 4-PoD configuration (single file) ====\n");
    out.push_str(&mrmtp_fabric_config(&fabric));
    let mut bgp = build_sim(params, Stack::BgpEcmp, seed, &[]);
    bgp.sim.run_until(secs(5));
    out.push_str("\n\n==== Listing 3: tier-2 spine (S-1-1) BGP routing table ====\n");
    out.push_str(&bgp.bgp(bgp.fabric.pod_spine(0, 0)).render_table());
    let mut mtp = build_sim(params, Stack::Mrmtp, seed, &[]);
    mtp.sim.run_until(secs(5));
    out.push_str("\n==== Listing 5: top spine (T-1) MR-MTP VID table ====\n");
    out.push_str(&mtp.mrmtp(mtp.fabric.top_spine(0)).render_table());
    out
}

/// §IX extension: scalability sweep over PoD counts (the paper defers
/// this to future Mininet work; the emulator does it directly).
pub fn scale_sweep(pods: &[usize], seed: u64) -> Figure {
    let mut specs = Vec::new();
    let mut meta = Vec::new();
    for &p in pods {
        for stack in [Stack::Mrmtp, Stack::BgpEcmp] {
            specs.push(
                RunSpec::new(ClosParams::scaled(p).expect("sweep pod counts are even"), stack)
                    .failing(FailureCase::Tc1)
                    .seeded(seed),
            );
            meta.push((p, stack));
        }
    }
    let results = run_matrix(specs);
    let rows = meta
        .into_iter()
        .zip(results)
        .map(|((p, stack), r)| {
            vec![
                p.to_string(),
                stack.label().to_string(),
                table::ms(r.convergence_ms),
                r.blast_radius.to_string(),
                r.control_bytes.to_string(),
            ]
        })
        .collect();
    Figure {
        title: "§IX extension — scalability sweep (failure at TC1)".to_string(),
        headers: vec!["pods", "stack", "convergence_ms", "blast_radius", "control_bytes"],
        rows,
    }
}

/// §IX extension: three vs four tiers under the same failure cases. The
/// paper's claim under test: MR-MTP "can easily scale to any number of
/// spine tiers" with no protocol or configuration changes.
pub fn tier_comparison(seed: u64) -> Figure {
    use crate::fabric::{build_four_tier_sim, build_sim};
    use dcn_sim::time::secs;
    let mut rows = Vec::new();
    for stack in [Stack::Mrmtp, Stack::BgpEcmp] {
        for (label, four) in [("3-tier (4-PoD)", false), ("4-tier (2×2 zones)", true)] {
            let mut built = if four {
                build_four_tier_sim(FourTierParams::small(), stack, seed, &[])
            } else {
                build_sim(ClosParams::four_pod(), stack, seed, &[])
            };
            built.sim.run_until(secs(5));
            let t0 = secs(5);
            let (node, port) = built.fabric.failure_point(FailureCase::Tc1);
            built.sim.schedule_port_down(
                t0,
                dcn_sim::NodeId(node as u32),
                dcn_sim::PortId(port as u16),
            );
            built.sim.run_until(secs(10));
            let trace = built.sim.trace();
            rows.push(vec![
                label.to_string(),
                stack.label().to_string(),
                built.fabric.num_routers().to_string(),
                crate::table::ms(
                    dcn_metrics::convergence_time(trace, t0)
                        .map(dcn_sim::time::as_millis_f64),
                ),
                dcn_metrics::blast_radius(trace, t0).to_string(),
                dcn_metrics::control_overhead_bytes(trace, t0, None).to_string(),
            ]);
        }
    }
    Figure {
        title: "§IX extension — tier scaling (failure at TC1)".to_string(),
        headers: vec!["fabric", "stack", "routers", "convergence_ms", "blast_radius", "control_bytes"],
        rows,
    }
}

/// §IX extension: "overhead calculations of using the MR-MTP header for
/// every IP packet". Runs the monitored flow with no failure and
/// compares data-plane bytes per packet-hop: MR-MTP encapsulates every
/// server packet (MR-MTP header with source/destination VIDs and flow
/// hash); BGP forwards the bare IP packet.
pub fn encap_overhead_figure(seed: u64) -> Figure {
    let mut rows = Vec::new();
    for stack in [Stack::Mrmtp, Stack::BgpEcmp] {
        let mut s = RunSpec::new(ClosParams::two_pod(), stack)
            .with_traffic(TrafficDir::NearToFar)
            .seeded(seed);
        s.timing.post_failure = secs(2);
        let r = s.run();
        let (frames, bytes) = r
            .breakdown
            .iter()
            .find(|(k, _, _)| *k == "data")
            .map(|&(_, f, b)| (f, b))
            .unwrap_or((0, 0));
        let per_hop = if frames > 0 { bytes as f64 / frames as f64 } else { 0.0 };
        rows.push(vec![
            stack.label().to_string(),
            frames.to_string(),
            bytes.to_string(),
            format!("{per_hop:.1}"),
        ]);
    }
    // Relative overhead in the last row.
    if rows.len() == 2 {
        let m: f64 = rows[0][3].parse().unwrap_or(0.0);
        let b: f64 = rows[1][3].parse().unwrap_or(1.0);
        rows.push(vec![
            "overhead".into(),
            "-".into(),
            "-".into(),
            format!("{:+.1}%", 100.0 * (m - b) / b),
        ]);
    }
    Figure {
        title: "§IX extension — data-plane encapsulation overhead (128 B UDP payloads,
                steady flow 11→14, all hops counted)"
            .to_string(),
        headers: vec!["stack", "data_frames", "wire_bytes", "bytes_per_hop"],
        rows,
    }
}

/// Fig. 1: the protocol-machinery comparison — protocols running on a
/// router under each stack, plus measured steady-state control traffic.
pub fn fig1_stack_comparison(seed: u64) -> Figure {
    let mut rows = Vec::new();
    for stack in Stack::ALL {
        let protocols = match stack {
            Stack::Mrmtp => "MR-MTP",
            Stack::BgpEcmp => "BGP, ECMP, TCP, IP",
            Stack::BgpEcmpBfd => "BGP, ECMP, BFD, TCP, UDP, IP",
        };
        let count = protocols.split(',').count();
        let r = steady_state(stack, seed);
        rows.push(vec![
            stack.label().to_string(),
            count.to_string(),
            protocols.to_string(),
            format!("{:.0}", r.keepalive.bytes_per_sec),
        ]);
    }
    Figure {
        title: "Fig. 1 — Protocol machinery per router (and measured steady-state \
                keep-alive load)"
            .to_string(),
        headers: vec!["stack", "protocols", "list", "keepalive_Bps"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_rendering_includes_title_and_rows() {
        let f = Figure {
            title: "T".into(),
            headers: vec!["a"],
            rows: vec![vec!["1".into()]],
        };
        let s = f.render();
        assert!(s.starts_with("T\n"));
        assert!(s.contains('1'));
    }

    #[test]
    fn config_comparison_favors_mrmtp_increasingly() {
        let f = config_comparison();
        assert_eq!(f.rows.len(), 4);
        let bytes: Vec<u64> = f.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        // [2pod-bgp, 2pod-mtp, 4pod-bgp, 4pod-mtp]
        assert!(bytes[0] > bytes[1]);
        assert!(bytes[2] > bytes[3]);
        assert!(bytes[2] as f64 / bytes[3] as f64 > bytes[0] as f64 / bytes[1] as f64);
    }

    #[test]
    fn listings_render_contains_all_four_artifacts() {
        let s = render_listings(1);
        assert!(s.contains("router bgp 64512"));
        assert!(s.contains("leavesNetworkPortDict"));
        assert!(s.contains("proto bgp metric 20"));
        assert!(s.contains("11.1.1"));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn encap_overhead_is_small_and_positive() {
        let f = encap_overhead_figure(5);
        assert_eq!(f.rows.len(), 3);
        let mtp: f64 = f.rows[0][3].parse().unwrap();
        let bgp: f64 = f.rows[1][3].parse().unwrap();
        assert!(mtp > bgp, "encapsulation adds bytes: {mtp} vs {bgp}");
        let pct = 100.0 * (mtp - bgp) / bgp;
        assert!(
            (0.5..15.0).contains(&pct),
            "single-digit percent overhead expected: {pct:.1}%"
        );
    }

    #[test]
    fn tier_comparison_contains_both_stacks_and_fabrics() {
        let f = tier_comparison(5);
        assert_eq!(f.rows.len(), 4);
        // MR-MTP's blast radius must not grow when a tier is added (zone
        // containment), while BGP's does.
        let mtp3: usize = f.rows[0][4].parse().unwrap();
        let mtp4: usize = f.rows[1][4].parse().unwrap();
        let bgp3: usize = f.rows[2][4].parse().unwrap();
        let bgp4: usize = f.rows[3][4].parse().unwrap();
        assert!(mtp4 <= mtp3 + 1, "zone containment: {mtp3} → {mtp4}");
        assert!(bgp4 > bgp3, "BGP's withdraw cascade widens: {bgp3} → {bgp4}");
    }
}
