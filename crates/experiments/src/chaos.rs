//! Chaos campaign engine (robustness harness).
//!
//! The paper's evaluation injects *scripted* failures (TC1–TC4). This
//! module complements it with *randomized* fault schedules — link flaps
//! with configurable dwell times, whole-node crashes with staggered
//! recovery, and k-point concurrent failures — replayed against both the
//! MR-MTP and BGP stacks while the wire is impaired (probabilistic frame
//! loss, byte corruption, delay jitter). After every schedule heals and
//! the fabric quiesces, four invariants are checked:
//!
//! 1. **No forwarding loops**: every ToR-pair × flow-sample walk over the
//!    actual data-plane decision function terminates without revisiting a
//!    node.
//! 2. **No black holes**: a walk that dies (no forwarding entry) while
//!    the destination is physically reachable over admin-up links is a
//!    violation.
//! 3. **Bounded re-convergence**: the last routing state change after the
//!    final heal event must land within a configured bound.
//! 4. **Determinism**: the same seed produces a bit-identical trace
//!    digest on a second run.
//!
//! Every random draw — schedule generation *and* wire impairment — comes
//! from seeded [`DetRng`] streams, so a violating seed is a complete,
//! replayable reproduction recipe.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

use dcn_sim::rng::DetRng;
use dcn_sim::time::{Duration, Time, MICROS, MILLIS, SECONDS};
use dcn_sim::{Impairment, NodeId, PortId, SchedulerKind};
use dcn_telemetry::{
    capture_dump, hists_jsonl, series_jsonl, spans_jsonl, Json, PerfReport, Telemetry,
    TelemetryConfig, TraceBundle,
};
use dcn_topology::{Addressing, ClosParams, Fabric, Role};
use dcn_traffic::SendSpec;
use dcn_wire::{ecmp_index, flow_hash, IpAddr4, IPPROTO_UDP};

use crate::fabric::{build_fabric_sim_sched, BuiltSim, Stack, StackTuning};
use crate::figures::Figure;
use crate::campaign::pool::fan_out;
use crate::scenario::advance;

/// Salt for the schedule-generation RNG stream (distinct from the
/// engine's per-node and impairment streams).
const SCHEDULE_SALT: u64 = 0x5C4E_D01E_FA17_5EED;

/// Tunables for one chaos run. [`ChaosConfig::default`] matches the
/// acceptance campaign: link flaps + a node crash + concurrent failures
/// on a 2-PoD fabric with 1 % frame corruption.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Fabric under test.
    pub params: ClosParams,
    /// Number of single-link flap pairs (down then up) per schedule.
    pub flaps: usize,
    /// Number of whole-node crashes (all interfaces down, staggered
    /// recovery) per schedule.
    pub crashes: usize,
    /// Size of the one concurrent k-point failure burst (0 disables it).
    pub k_concurrent: usize,
    /// Minimum flap dwell (time an interface stays down).
    pub min_dwell: Duration,
    /// Maximum flap dwell.
    pub max_dwell: Duration,
    /// Base downtime of a crashed node before its first port recovers.
    pub crash_dwell: Duration,
    /// Per-port random extra delay when a crashed node's ports recover.
    pub recovery_stagger: Duration,
    /// Wire impairment active during the fault window.
    pub impairment: Impairment,
    /// Protocol warm-up before the fault window opens.
    pub warmup: Duration,
    /// Length of the fault window. Every interface is healed by its end.
    pub window: Duration,
    /// Clean settle time after the window before invariants are checked.
    pub settle: Duration,
    /// Re-convergence bound: the last routing state change after the
    /// final heal must land within this much time (must be < `settle`).
    pub convergence_bound: Duration,
    /// Flow samples walked per ToR pair when checking loop/black-hole
    /// invariants (each sample varies the UDP source port).
    pub flows_per_pair: usize,
    /// Event-scheduler backend (the equivalence suite runs the same
    /// seeds on both backends and compares digests).
    pub scheduler: SchedulerKind,
    /// Data-plane fast path on every router (the equivalence suite runs
    /// the same seeds with it off and compares digests).
    pub fast_path: bool,
    /// Local fast reroute on every router (precomputed backup FIBs).
    /// Off by default so historical per-seed digests are unchanged; when
    /// on, the repair-loop invariant is additionally checked.
    pub local_repair: bool,
    /// Cross-pod background flows run through the fault window so the
    /// per-router `blackholed_in_window` / `locally_repaired` counters
    /// measure real transit packets. 0 (the default) adds no senders and
    /// leaves historical digests untouched.
    pub traffic_pairs: usize,
    /// Worker threads for the sharded parallel engine (1 = sequential
    /// reference). Per-seed digests are bit-identical across worker
    /// counts; the equivalence suite enforces it.
    pub workers: usize,
    /// Engine runtime profiling (host-clock observation only). Per-seed
    /// digests are bit-identical with it on or off; the equivalence
    /// suite enforces it.
    pub profile: bool,
    /// Adaptive window batching on the sharded engine. On by default;
    /// per-seed digests are bit-identical with it on or off — the
    /// equivalence suite runs chaos seeds both ways.
    pub batch_windows: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            params: ClosParams::two_pod(),
            flaps: 6,
            crashes: 1,
            k_concurrent: 2,
            min_dwell: 200 * MILLIS,
            max_dwell: 1500 * MILLIS,
            crash_dwell: 800 * MILLIS,
            recovery_stagger: 400 * MILLIS,
            impairment: Impairment {
                loss_ppm: 2_000,       // 0.2 % frame loss
                corrupt_ppm: 10_000,   // 1 % byte corruption
                jitter: 20 * MICROS,
            },
            warmup: 5 * SECONDS,
            window: 6 * SECONDS,
            settle: 8 * SECONDS,
            // BGP's worst legitimate post-heal sequence is a stale
            // hold-timer expiry (3 s) followed by up to two connect
            // retries (1 s each) before updates propagate; anything past
            // 6 s means the fabric is not quiescing.
            convergence_bound: 6 * SECONDS,
            flows_per_pair: 4,
            scheduler: SchedulerKind::default(),
            fast_path: true,
            local_repair: false,
            traffic_pairs: 0,
            workers: 1,
            profile: false,
            batch_windows: true,
        }
    }
}

impl ChaosConfig {
    /// Instant the fault window closes and the last heals fire.
    pub fn heal_at(&self) -> Time {
        self.warmup + self.window
    }

    /// Instant the run ends and invariants are checked.
    pub fn end_at(&self) -> Time {
        self.heal_at() + self.settle
    }
}

/// One administrative interface transition in a fault schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    pub at: Time,
    pub node: usize,
    pub port: usize,
    pub up: bool,
}

/// A seeded, fully-healed fault schedule: a chronologically sorted list
/// of interface transitions in which every interface taken down is back
/// up by [`ChaosConfig::heal_at`].
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Generate the schedule for `seed` on `fabric`. Deterministic: the
    /// same (seed, fabric, config) always yields the same schedule.
    pub fn generate(seed: u64, fabric: &Fabric, cfg: &ChaosConfig) -> FaultSchedule {
        let mut rng = DetRng::new(seed, SCHEDULE_SALT);
        let start = cfg.warmup;
        let heal_at = cfg.heal_at();
        let span = cfg.window.saturating_sub(cfg.min_dwell).max(1);

        // Router-to-router interfaces are the flap/k-point candidates;
        // host-facing ports only go down when their whole node crashes.
        let mut ifaces: Vec<(usize, usize)> = Vec::new();
        for (n, node) in fabric.nodes.iter().enumerate() {
            if !node.role.is_router() {
                continue;
            }
            for (p, pr) in fabric.ports[n].iter().enumerate() {
                if fabric.nodes[pr.peer].role.is_router() {
                    ifaces.push((n, p));
                }
            }
        }
        let routers: Vec<usize> = fabric
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.role.is_router())
            .map(|(i, _)| i)
            .collect();

        let mut ev = Vec::new();
        let dwell = |rng: &mut DetRng| {
            cfg.min_dwell + rng.below(cfg.max_dwell.saturating_sub(cfg.min_dwell) + 1)
        };

        // Single-link flaps.
        for _ in 0..cfg.flaps {
            let (n, p) = ifaces[rng.below(ifaces.len() as u64) as usize];
            let down_at = start + rng.below(span);
            let up_at = (down_at + dwell(&mut rng)).min(heal_at);
            ev.push(FaultEvent { at: down_at, node: n, port: p, up: false });
            ev.push(FaultEvent { at: up_at, node: n, port: p, up: true });
        }

        // Whole-node crashes: every port down at once, staggered recovery.
        for _ in 0..cfg.crashes {
            let n = routers[rng.below(routers.len() as u64) as usize];
            let crash_at = start + rng.below(span);
            for p in 0..fabric.ports[n].len() {
                let up_at = (crash_at
                    + cfg.crash_dwell
                    + rng.below(cfg.recovery_stagger + 1))
                .min(heal_at);
                ev.push(FaultEvent { at: crash_at, node: n, port: p, up: false });
                ev.push(FaultEvent { at: up_at, node: n, port: p, up: true });
            }
        }

        // One k-point concurrent burst: k distinct interfaces cut at the
        // same instant, each healing independently.
        if cfg.k_concurrent > 0 {
            let burst_at = start + rng.below(span);
            let mut picked = HashSet::new();
            while picked.len() < cfg.k_concurrent.min(ifaces.len()) {
                picked.insert(ifaces[rng.below(ifaces.len() as u64) as usize]);
            }
            let mut picked: Vec<_> = picked.into_iter().collect();
            picked.sort_unstable();
            for (n, p) in picked {
                let up_at = (burst_at + dwell(&mut rng)).min(heal_at);
                ev.push(FaultEvent { at: burst_at, node: n, port: p, up: false });
                ev.push(FaultEvent { at: up_at, node: n, port: p, up: true });
            }
        }

        ev.sort_by_key(|e| (e.at, e.node, e.port, e.up));

        // Replay with the engine's dedup semantics to find interfaces
        // still down at window close, and heal them. (Overlapping flaps
        // on one interface can leave a later `up` as a no-op while an
        // earlier `down` wins.)
        let mut state: std::collections::HashMap<(usize, usize), bool> =
            std::collections::HashMap::new();
        for e in &ev {
            let s = state.entry((e.node, e.port)).or_insert(true);
            if *s != e.up {
                *s = e.up;
            }
        }
        for ((n, p), up) in state {
            if !up {
                ev.push(FaultEvent { at: heal_at, node: n, port: p, up: true });
            }
        }
        ev.sort_by_key(|e| (e.at, e.node, e.port, e.up));
        FaultSchedule { events: ev }
    }

    /// Number of distinct down transitions (the "fault count").
    pub fn fault_count(&self) -> usize {
        self.events.iter().filter(|e| !e.up).count()
    }
}

/// Result of one chaos run (one seed × one stack).
#[derive(Clone, Debug)]
pub struct ChaosRun {
    pub seed: u64,
    pub stack: Stack,
    /// Down transitions injected by the schedule.
    pub faults: usize,
    /// Forwarding-loop violations found after quiescence.
    pub loops: usize,
    /// Black-hole violations (no route while physically reachable).
    pub black_holes: usize,
    /// Repair-loop violations: a walk that revisits a node after local
    /// fast reroute engaged (checked only with
    /// [`ChaosConfig::local_repair`]; always 0 otherwise).
    pub repair_loops: usize,
    /// Transit packets dropped for want of a live forwarding entry
    /// during the run, summed over every router (the loss window local
    /// repair exists to shrink). Counted identically with the knob on or
    /// off; 0 without [`ChaosConfig::traffic_pairs`].
    pub window_blackholed: u64,
    /// Transit packets local fast reroute steered around a locally-dead
    /// egress, summed over every router.
    pub window_repaired: u64,
    /// ToR pairs that were physically unreachable at check time (should
    /// be zero: every schedule is fully healed).
    pub unreachable_pairs: usize,
    /// Whether the last routing state change after the final heal landed
    /// within [`ChaosConfig::convergence_bound`].
    pub converged: bool,
    /// Time of the last routing state change after the final heal
    /// (`None` = the fabric was already quiet).
    pub convergence: Option<Duration>,
    /// Trace digest; equal digests across runs of the same seed certify
    /// bit-identical execution.
    pub digest: u64,
    /// Whether a second same-seed run reproduced `digest` exactly.
    pub deterministic: bool,
    /// Corrupted/undecodable frames dropped by protocol parsers.
    pub malformed_dropped: u64,
    /// Frames the wire corrupted during the impairment window.
    pub frames_corrupted: u64,
    /// Frames the wire dropped outright during the impairment window.
    pub frames_lost: u64,
}

impl ChaosRun {
    /// Total invariant violations in this run.
    pub fn violations(&self) -> usize {
        self.loops
            + self.black_holes
            + self.repair_loops
            + self.unreachable_pairs
            + usize::from(!self.converged)
            + usize::from(!self.deterministic)
    }
}

/// Execute one chaos run: warm up, open the impaired fault window, replay
/// the schedule, heal, settle, then check every invariant.
pub fn run_chaos(seed: u64, stack: Stack, cfg: &ChaosConfig) -> ChaosRun {
    let (run, _, _) = run_chaos_once(seed, stack, cfg, &mut None);
    run
}

/// [`run_chaos`] with the engine profiler forced on, handing back the
/// perf report alongside the run. The digest in the returned run is
/// bit-identical to an unprofiled run of the same seed (the profiler is
/// a pure host-clock observer).
pub fn run_chaos_profiled(seed: u64, stack: Stack, cfg: &ChaosConfig) -> (ChaosRun, PerfReport) {
    let cfg = ChaosConfig { profile: true, ..cfg.clone() };
    let (run, _, mut built) = run_chaos_once(seed, stack, &cfg, &mut None);
    let profile = built.sim.take_profile().expect("profiling enabled");
    let names = crate::profile::node_names(&built.sim);
    let label = format!("chaos {} seed {}", stack.slug(), seed);
    let report = PerfReport::new(profile, label, cfg.workers.max(1), names);
    (run, report)
}

fn run_chaos_once(
    seed: u64,
    stack: Stack,
    cfg: &ChaosConfig,
    tel: &mut Option<Telemetry>,
) -> (ChaosRun, FaultSchedule, BuiltSim) {
    let fabric = Fabric::build(cfg.params);
    let addr = Addressing::new(&fabric);
    let senders = chaos_senders(&fabric, &addr, cfg);
    let mut built = build_fabric_sim_sched(
        fabric,
        stack,
        seed,
        &senders,
        StackTuning {
            fast_path: cfg.fast_path,
            local_repair: cfg.local_repair,
            workers: cfg.workers.max(1),
            profile: cfg.profile,
            batch_windows: cfg.batch_windows,
            ..StackTuning::default()
        },
        cfg.scheduler,
    );
    let schedule = FaultSchedule::generate(seed, &built.fabric, cfg);

    // Schedule every administrative transition up front; the engine's
    // double-scheduling guard drops no-op transitions exactly the way
    // the schedule replay predicted.
    for e in &schedule.events {
        let (node, port) = (NodeId(e.node as u32), PortId(e.port as u16));
        if e.up {
            built.sim.schedule_port_up(e.at, node, port);
        } else {
            built.sim.schedule_port_down(e.at, node, port);
        }
    }

    // Warm up clean, impair the wire for the fault window, then clear
    // the impairment just before the final heals so the settle period is
    // a clean fabric.
    let heal_at = cfg.heal_at();
    advance(&mut built.sim, cfg.warmup, tel);
    built.sim.set_impairment_all(cfg.impairment);
    advance(&mut built.sim, heal_at.saturating_sub(1), tel);
    built.sim.set_impairment_all(Impairment::none());
    advance(&mut built.sim, cfg.end_at(), tel);

    let convergence = dcn_metrics::last_state_change(built.sim.trace(), heal_at);
    let converged = convergence.is_none_or(|d| d <= cfg.convergence_bound);
    let (loops, black_holes, unreachable_pairs) = check_forwarding_invariants(&built, cfg);
    let repair_loops = if cfg.local_repair { check_repair_loops(&built, cfg) } else { 0 };
    let digest = trace_digest(&built.sim);

    let mut malformed_dropped = 0;
    let (mut window_blackholed, mut window_repaired) = (0u64, 0u64);
    for (i, _) in built.fabric.nodes.iter().enumerate().filter(|(_, n)| n.role.is_router()) {
        let (malformed, blackholed, repaired) = match stack {
            Stack::Mrmtp => {
                let s = built.mrmtp(i).stats();
                (s.malformed_frames_dropped, s.blackholed_in_window, s.locally_repaired)
            }
            Stack::BgpEcmp | Stack::BgpEcmpBfd => {
                let s = built.bgp(i).stats();
                (s.malformed_frames_dropped, s.blackholed_in_window, s.locally_repaired)
            }
        };
        malformed_dropped += malformed;
        window_blackholed += blackholed;
        window_repaired += repaired;
    }

    let run = ChaosRun {
        seed,
        stack,
        faults: schedule.fault_count(),
        loops,
        black_holes,
        repair_loops,
        window_blackholed,
        window_repaired,
        unreachable_pairs,
        converged,
        convergence,
        digest,
        deterministic: true,
        malformed_dropped,
        frames_corrupted: built.sim.frames_corrupted(),
        frames_lost: built.sim.frames_lost_to_impairment(),
    };
    (run, schedule, built)
}

/// Re-run one (seed, stack) pair with telemetry attached and package a
/// self-contained replay bundle: the fault schedule, every typed span,
/// the sampled series and a capture of the fault window. Sampling is
/// read-only, so the instrumented run reproduces the original digest —
/// the caller can (and [`run_campaign`] does) cross-check it.
pub fn chaos_bundle(
    seed: u64,
    stack: Stack,
    cfg: &ChaosConfig,
    tel_cfg: TelemetryConfig,
) -> (ChaosRun, TraceBundle) {
    let mut tel = Some(Telemetry::new(tel_cfg));
    let (run, schedule, mut built) = run_chaos_once(seed, stack, cfg, &mut tel);
    let tel = tel.expect("telemetry preserved");
    // When the config profiled the run, the bundle carries the perf
    // report and Chrome trace alongside the replay artifacts.
    let perf = built.sim.take_profile().map(|profile| {
        let names = crate::profile::node_names(&built.sim);
        let label = format!("chaos {} seed {}", stack.slug(), seed);
        PerfReport::new(profile, label, cfg.workers.max(1), names)
    });
    let sim = &built.sim;
    let name_of = |n: NodeId| sim.node_name(n).to_string();

    let meta = Json::obj(vec![
        ("kind", Json::str("chaos")),
        ("stack", Json::str(stack.slug())),
        ("seed", Json::UInt(seed)),
        ("digest", Json::UInt(run.digest)),
        ("faults", Json::UInt(run.faults as u64)),
        ("loops", Json::UInt(run.loops as u64)),
        ("black_holes", Json::UInt(run.black_holes as u64)),
        ("unreachable_pairs", Json::UInt(run.unreachable_pairs as u64)),
        ("repair_loops", Json::UInt(run.repair_loops as u64)),
        ("window_blackholed", Json::UInt(run.window_blackholed)),
        ("window_repaired", Json::UInt(run.window_repaired)),
        ("converged", Json::Bool(run.converged)),
        ("violations", Json::UInt(run.violations() as u64)),
        ("samples", Json::UInt(tel.samples_taken())),
        ("heal_at_ns", Json::UInt(cfg.heal_at())),
        ("end_ns", Json::UInt(cfg.end_at())),
    ]);
    let mut b = TraceBundle::new(meta);

    let mut sched = String::new();
    for e in &schedule.events {
        sched.push_str(
            &Json::obj(vec![
                ("at", Json::UInt(e.at)),
                ("node", Json::str(name_of(NodeId(e.node as u32)))),
                ("node_id", Json::UInt(e.node as u64)),
                ("port", Json::UInt(e.port as u64)),
                ("up", Json::Bool(e.up)),
            ])
            .render(),
        );
        sched.push('\n');
    }
    b.add_file("schedule.jsonl", sched);
    b.add_file("spans.jsonl", spans_jsonl(sim.trace(), name_of));
    b.add_file("series.jsonl", series_jsonl(tel.registry(), |i| name_of(NodeId(i))));
    b.add_file("hists.jsonl", hists_jsonl(&tel));
    b.add_file("capture.txt", capture_dump(sim, cfg.warmup, cfg.end_at(), 200));
    if let Some(report) = &perf {
        b.add_file("perf_report.json", report.to_json().render() + "\n");
        b.add_file("trace.chrome.json", report.to_chrome_trace());
    }
    (run, b)
}

/// Digest of everything observable about a finished run: the full frame
/// trace plus the engine's global counters. Two runs of the same seed
/// must produce the same digest bit-for-bit.
pub fn trace_digest(sim: &dcn_sim::Sim) -> u64 {
    let mut h = DefaultHasher::new();
    sim.events_processed().hash(&mut h);
    sim.frames_delivered().hash(&mut h);
    sim.frames_corrupted().hash(&mut h);
    sim.frames_lost_to_impairment().hash(&mut h);
    for ev in sim.trace().events() {
        format!("{ev:?}").hash(&mut h);
    }
    h.finish()
}

/// Cross-pod background flows for the loss-window measurement: pair the
/// first server of each ToR in the first pod with one in the last pod
/// and run them through the fault window. With these in place the
/// per-router `blackholed_in_window` / `locally_repaired` counters
/// measure real transit packets, so an on-vs-off comparison quantifies
/// the loss window local fast reroute closes.
fn chaos_senders(fabric: &Fabric, addr: &Addressing, cfg: &ChaosConfig) -> Vec<(usize, SendSpec)> {
    if cfg.traffic_pairs == 0 {
        return Vec::new();
    }
    // First server (idx 0) of every ToR, keyed by pod:
    // (tor node, server node) pairs.
    let mut by_pod: std::collections::BTreeMap<usize, Vec<(usize, usize)>> =
        std::collections::BTreeMap::new();
    for (n, node) in fabric.nodes.iter().enumerate() {
        if let Role::Server { pod, tor_idx, idx: 0 } = node.role {
            by_pod.entry(pod).or_default().push((fabric.tor(pod, tor_idx), n));
        }
    }
    let first = by_pod.keys().next().copied().unwrap_or(0);
    let last = by_pod.keys().next_back().copied().unwrap_or(0);
    let (src_list, dst_list) = (by_pod[&first].clone(), by_pod[&last].clone());
    let mut senders = Vec::new();
    for k in 0..cfg.traffic_pairs {
        let (_, sender_node) = src_list[k % src_list.len()];
        let (dst_tor, _) = dst_list[k % dst_list.len()];
        let dst_ip = addr.server_addr(dst_tor, 0).expect("server address");
        senders.push((
            sender_node,
            SendSpec {
                // Distinct source ports spread the pairs across ECMP paths.
                src_port: 7000 + k as u16,
                ..SendSpec::new(dst_ip, cfg.warmup, cfg.heal_at())
            },
        ));
    }
    senders
}

/// The plain data-plane pick at `cur` toward `dst_ip`, mirroring each
/// stack's selection exactly. The `up` closure supplies externally
/// observed interface state; BGP ignores it by design (its FIB carries
/// no liveness mask — exactly why its off-mode loss window exists).
fn data_pick(
    built: &BuiltSim,
    cur: usize,
    dst_ip: IpAddr4,
    hash: u64,
    up: &dyn Fn(usize, PortId) -> bool,
) -> Option<PortId> {
    match built.stack {
        Stack::Mrmtp => {
            let root = dst_ip.third_octet();
            built.mrmtp(cur).forwarding_port(root, (hash & 0xFFFF) as u16, |p| up(cur, p))
        }
        Stack::BgpEcmp | Stack::BgpEcmpBfd => {
            built.bgp(cur).rib().lookup(dst_ip).and_then(|(_, members)| {
                if members.is_empty() {
                    None
                } else {
                    Some(members[ecmp_index(hash, members.len())].peer_port)
                }
            })
        }
    }
}

/// The repair-stage pick at `cur`: surviving plain candidates first
/// (MR-MTP's masked reference set, BGP's surviving ECMP members), then
/// the precomputed backups, avoiding the arrival port unless it is the
/// only survivor — mirroring both `lookup_repair` implementations.
fn repair_pick(
    built: &BuiltSim,
    cur: usize,
    dst_ip: IpAddr4,
    hash: u64,
    up: &dyn Fn(usize, PortId) -> bool,
    arrival: Option<PortId>,
) -> Option<PortId> {
    let spread = |ports: Vec<PortId>, h: u64| -> Option<PortId> {
        if ports.is_empty() {
            return None;
        }
        let keep: Vec<PortId> = ports.iter().copied().filter(|&p| Some(p) != arrival).collect();
        let set = if keep.is_empty() { ports } else { keep };
        Some(set[ecmp_index(h, set.len())])
    };
    match built.stack {
        Stack::Mrmtp => {
            let root = dst_ip.third_octet();
            let f16 = hash & 0xFFFF;
            let r = built.mrmtp(cur);
            let plain = r.forwarding_candidates(root, |p| up(cur, p));
            if !plain.is_empty() {
                return Some(plain[ecmp_index(f16, plain.len())]);
            }
            spread(r.repair_candidates(root, |p| up(cur, p)), f16)
        }
        Stack::BgpEcmp | Stack::BgpEcmpBfd => {
            let rib = built.bgp(cur).rib();
            let (prefix, members) = rib.lookup(dst_ip)?;
            let survivors: Vec<PortId> =
                members.iter().map(|e| e.peer_port).filter(|&p| up(cur, p)).collect();
            if let Some(p) = spread(survivors, hash) {
                return Some(p);
            }
            spread(rib.backup_members(prefix).into_iter().filter(|&p| up(cur, p)).collect(), hash)
        }
    }
}

/// The loop-guard invariant for local fast reroute: for every ToR pair ×
/// flow sample, and for every router hop F on the healthy path, kill
/// every plain next-hop F has toward the destination, let F take its one
/// in-data-plane repair, and continue with plain forwarding only — the
/// wire semantics, where a repaired packet is never repaired again and a
/// second dead egress drops it. Any node revisit under these rules is a
/// repair loop. Returns the violation count; honest drops (empty backup
/// set, repaired packet back at the dead hop) are not violations.
fn check_repair_loops(built: &BuiltSim, cfg: &ChaosConfig) -> usize {
    let fabric = &built.fabric;
    let tors: Vec<usize> = fabric
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.role, Role::Tor { .. }))
        .map(|(i, _)| i)
        .collect();

    let mut loops = 0;
    for &src in &tors {
        for &dst in &tors {
            if src == dst {
                continue;
            }
            for flow in 0..cfg.flows_per_pair {
                let Some(path) = plain_path(built, src, dst, flow as u16) else {
                    continue;
                };
                for &fx_node in &path {
                    let dead = plain_next_hops(built, fx_node, dst);
                    if dead.is_empty() {
                        continue;
                    }
                    if matches!(
                        walk_repair(built, src, dst, flow as u16, fx_node, &dead),
                        WalkOutcome::Loop
                    ) {
                        loops += 1;
                    }
                }
            }
        }
    }
    loops
}

/// The router hops a packet of this flow visits from `src` to `dst` on
/// the healthy (post-heal) fabric, destination excluded. `None` when the
/// plain walk does not deliver (already flagged by the base invariants).
fn plain_path(built: &BuiltSim, src: usize, dst: usize, flow: u16) -> Option<Vec<usize>> {
    let sim = &built.sim;
    let src_ip = built.addr.server_addr(src, 0)?;
    let dst_ip = built.addr.server_addr(dst, 0)?;
    let hash = flow_hash(src_ip, dst_ip, IPPROTO_UDP, 1000 + flow, 5000);
    let up = |n: usize, p: PortId| sim.port_up(NodeId(n as u32), p);

    let mut path = Vec::new();
    let mut visited = HashSet::new();
    let mut cur = src;
    loop {
        if cur == dst {
            return Some(path);
        }
        if !visited.insert(cur) {
            return None;
        }
        path.push(cur);
        let port = data_pick(built, cur, dst_ip, hash, &up)?;
        let peer = sim.peer_of(NodeId(cur as u32), port)?;
        cur = peer.node.0 as usize;
    }
}

/// Every plain next-hop port `node` could use toward `dst` on the
/// healthy fabric — the set the repair walk pretends just died.
fn plain_next_hops(built: &BuiltSim, node: usize, dst: usize) -> HashSet<PortId> {
    let sim = &built.sim;
    let Some(dst_ip) = built.addr.server_addr(dst, 0) else {
        return HashSet::new();
    };
    match built.stack {
        Stack::Mrmtp => built
            .mrmtp(node)
            .forwarding_candidates(dst_ip.third_octet(), |p| sim.port_up(NodeId(node as u32), p))
            .into_iter()
            .collect(),
        Stack::BgpEcmp | Stack::BgpEcmpBfd => built
            .bgp(node)
            .rib()
            .lookup(dst_ip)
            .map(|(_, m)| m.iter().map(|e| e.peer_port).collect())
            .unwrap_or_default(),
    }
}

/// Walk `src` → `dst` with every plain next-hop at `fx_node` dead,
/// applying the wire's repair semantics: one repair at that hop, plain
/// forwarding (and honest drops) everywhere after.
fn walk_repair(
    built: &BuiltSim,
    src: usize,
    dst: usize,
    flow: u16,
    fx_node: usize,
    fx_dead: &HashSet<PortId>,
) -> WalkOutcome {
    let sim = &built.sim;
    let Some(src_ip) = built.addr.server_addr(src, 0) else {
        return WalkOutcome::BlackHole;
    };
    let Some(dst_ip) = built.addr.server_addr(dst, 0) else {
        return WalkOutcome::BlackHole;
    };
    let hash = flow_hash(src_ip, dst_ip, IPPROTO_UDP, 1000 + flow, 5000);
    let up = |n: usize, p: PortId| {
        sim.port_up(NodeId(n as u32), p) && !(n == fx_node && fx_dead.contains(&p))
    };

    // The walk is deterministic given (node, repaired-flag): a genuine
    // forwarding loop revisits the same state. A plain node revisit is
    // NOT enough — a repaired packet legitimately bounces back through
    // its arrival path and terminates at the dead hop (an honest drop).
    let mut visited = HashSet::new();
    let mut cur = src;
    let mut arrival: Option<PortId> = None;
    let mut repaired = false;
    loop {
        if cur == dst {
            return WalkOutcome::Delivered;
        }
        if !visited.insert((cur, repaired)) {
            return WalkOutcome::Loop;
        }
        let port = if cur == fx_node {
            if repaired {
                // The loop guard: a packet is repaired at most once, so
                // meeting the dead egress again drops it on the wire.
                return WalkOutcome::BlackHole;
            }
            repaired = true;
            match repair_pick(built, cur, dst_ip, hash, &up, arrival) {
                Some(p) => p,
                None => return WalkOutcome::BlackHole,
            }
        } else {
            match data_pick(built, cur, dst_ip, hash, &up) {
                Some(p) => p,
                None => return WalkOutcome::BlackHole,
            }
        };
        let Some(peer) = sim.peer_of(NodeId(cur as u32), port) else {
            return WalkOutcome::BlackHole;
        };
        arrival = Some(peer.port);
        cur = peer.node.0 as usize;
    }
}

/// Walk the data plane for every ToR pair × flow sample and count loop /
/// black-hole violations. Returns (loops, black_holes, unreachable).
fn check_forwarding_invariants(built: &BuiltSim, cfg: &ChaosConfig) -> (usize, usize, usize) {
    let fabric = &built.fabric;
    let tors: Vec<usize> = fabric
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.role, Role::Tor { .. }))
        .map(|(i, _)| i)
        .collect();

    let mut loops = 0;
    let mut black_holes = 0;
    let mut unreachable = 0;
    for &src in &tors {
        let reachable = physically_reachable(built, src);
        for &dst in &tors {
            if src == dst {
                continue;
            }
            if !reachable.contains(&dst) {
                unreachable += 1;
                continue;
            }
            for flow in 0..cfg.flows_per_pair {
                match walk(built, src, dst, flow as u16) {
                    WalkOutcome::Delivered => {}
                    WalkOutcome::Loop => loops += 1,
                    WalkOutcome::BlackHole => black_holes += 1,
                }
            }
        }
    }
    (loops, black_holes, unreachable)
}

enum WalkOutcome {
    Delivered,
    Loop,
    BlackHole,
}

/// Follow the forwarding decision a packet of the given flow sample
/// would experience from `src` ToR to `dst` ToR, mirroring each stack's
/// data-plane selection exactly.
fn walk(built: &BuiltSim, src: usize, dst: usize, flow: u16) -> WalkOutcome {
    let sim = &built.sim;
    let src_ip = built.addr.server_addr(src, 0).expect("src server addr");
    let dst_ip = built.addr.server_addr(dst, 0).expect("dst server addr");
    // Vary the UDP source port per flow sample, exactly like a host
    // would spread flows across ECMP paths.
    let hash = flow_hash(src_ip, dst_ip, IPPROTO_UDP, 1000 + flow, 5000);

    let mut visited = HashSet::new();
    let mut cur = src;
    loop {
        if cur == dst {
            return WalkOutcome::Delivered;
        }
        if !visited.insert(cur) {
            return WalkOutcome::Loop;
        }
        let next_port = match built.stack {
            Stack::Mrmtp => {
                // Mirrors `on_host_ip`/`on_data`: destination root is the
                // third address octet; the data plane hashes the low 16
                // bits of the flow hash over the candidate set.
                let root = dst_ip.third_octet();
                let f16 = (hash & 0xFFFF) as u16;
                built
                    .mrmtp(cur)
                    .forwarding_port(root, f16, |p| sim.port_up(NodeId(cur as u32), p))
            }
            Stack::BgpEcmp | Stack::BgpEcmpBfd => {
                // Mirrors `forward_data`: LPM lookup, then ECMP over the
                // member list with the full flow hash.
                built.bgp(cur).rib().lookup(dst_ip).and_then(|(_, members)| {
                    if members.is_empty() {
                        None
                    } else {
                        Some(members[ecmp_index(hash, members.len())].peer_port)
                    }
                })
            }
        };
        let Some(port) = next_port else {
            return WalkOutcome::BlackHole;
        };
        let Some(peer) = sim.peer_of(NodeId(cur as u32), port) else {
            return WalkOutcome::BlackHole;
        };
        cur = peer.node.0 as usize;
    }
}

/// BFS over admin-up router-to-router links from `src`: the set of
/// routers a packet could physically reach. A walk failure toward an
/// unreachable destination is a partition, not a black hole.
fn physically_reachable(built: &BuiltSim, src: usize) -> HashSet<usize> {
    let sim = &built.sim;
    let fabric = &built.fabric;
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(src);
    queue.push_back(src);
    while let Some(n) = queue.pop_front() {
        let nid = NodeId(n as u32);
        for p in 0..sim.port_count(nid) {
            let port = PortId(p as u16);
            let Some(peer) = sim.peer_of(nid, port) else {
                continue;
            };
            let m = peer.node.0 as usize;
            if !fabric.nodes[m].role.is_router() {
                continue;
            }
            if sim.port_up(nid, port) && sim.port_up(peer.node, peer.port) && seen.insert(m) {
                queue.push_back(m);
            }
        }
    }
    seen
}

/// Configuration of a whole campaign: a seed range fanned over worker
/// threads for a list of stacks.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of seeds (seed values are `base_seed..base_seed + seeds`).
    pub seeds: u64,
    /// First seed value.
    pub base_seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Stacks under test.
    pub stacks: Vec<Stack>,
    /// Per-run tunables.
    pub chaos: ChaosConfig,
    /// Re-run every (seed, stack) pair and compare trace digests.
    pub check_determinism: bool,
    /// When set, any run that violates an invariant is re-run with
    /// telemetry attached and a replay bundle is written under this
    /// directory (`chaos-<stack>-seed<N>/`).
    pub telemetry_out: Option<PathBuf>,
    /// When set, every run executes with the engine profiler on (digests
    /// unchanged) and writes `perf_report.json` + `trace.chrome.json`
    /// under `<dir>/chaos-<stack>-seed<N>-perf/`.
    pub profile_out: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seeds: 64,
            base_seed: 1,
            threads: 0,
            stacks: vec![Stack::Mrmtp, Stack::BgpEcmp],
            chaos: ChaosConfig::default(),
            check_determinism: true,
            telemetry_out: None,
            profile_out: None,
        }
    }
}

/// All runs of a campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignResult {
    pub runs: Vec<ChaosRun>,
}

impl CampaignResult {
    /// Total invariant violations across every run.
    pub fn violations(&self) -> usize {
        self.runs.iter().map(ChaosRun::violations).sum()
    }
}

/// Run the campaign: every (stack, seed) pair is an independent job
/// fanned out over worker threads. With `check_determinism`, each job
/// runs its simulation twice and compares digests.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let mut jobs = Vec::new();
    for &stack in &cfg.stacks {
        for s in 0..cfg.seeds {
            jobs.push((stack, cfg.base_seed + s));
        }
    }
    let chaos = cfg.chaos.clone();
    let check = cfg.check_determinism;
    let out = cfg.telemetry_out.clone();
    let profile_out = cfg.profile_out.clone();
    let runs = fan_out(jobs, cfg.threads, move |(stack, seed)| {
        let mut run = if let Some(dir) = &profile_out {
            let (run, report) = run_chaos_profiled(seed, stack, &chaos);
            let sub = dir.join(format!("chaos-{}-seed{}-perf", stack.slug(), seed));
            if let Err(e) = crate::profile::write_profile_artifacts(&report, &sub) {
                eprintln!("chaos: perf artifacts to {} failed: {e}", sub.display());
            }
            run
        } else {
            run_chaos(seed, stack, &chaos)
        };
        if check {
            let again = run_chaos(seed, stack, &chaos);
            run.deterministic = run.digest == again.digest;
        }
        if run.violations() > 0 {
            if let Some(dir) = &out {
                let (rerun, bundle) = chaos_bundle(seed, stack, &chaos, TelemetryConfig::default());
                // The instrumented re-run must reproduce the original
                // digest; a mismatch is itself a determinism violation.
                run.deterministic &= rerun.digest == run.digest;
                let sub = dir.join(format!("chaos-{}-seed{}", stack.slug(), seed));
                match bundle.write(&sub) {
                    Ok(_) => eprintln!("chaos: replay bundle written to {}", sub.display()),
                    Err(e) => eprintln!("chaos: bundle write to {} failed: {e}", sub.display()),
                }
            }
        }
        run
    });
    CampaignResult { runs }
}

/// Per-stack summary table of a campaign: fault totals, invariant
/// violations, and the post-heal re-convergence distribution.
pub fn campaign_summary(cfg: &CampaignConfig, result: &CampaignResult) -> Figure {
    let mut rows = Vec::new();
    for &stack in &cfg.stacks {
        let runs: Vec<&ChaosRun> = result.runs.iter().filter(|r| r.stack == stack).collect();
        if runs.is_empty() {
            continue;
        }
        let conv: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.convergence)
            .map(|d| d as f64 / MILLIS as f64)
            .collect();
        let (min, mean, max) = if conv.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            let mean = conv.iter().sum::<f64>() / conv.len() as f64;
            (
                conv.iter().cloned().fold(f64::INFINITY, f64::min),
                mean,
                conv.iter().cloned().fold(0.0, f64::max),
            )
        };
        rows.push(vec![
            stack.label().to_string(),
            runs.len().to_string(),
            runs.iter().map(|r| r.faults).sum::<usize>().to_string(),
            runs.iter().map(|r| r.loops).sum::<usize>().to_string(),
            runs.iter().map(|r| r.black_holes).sum::<usize>().to_string(),
            runs.iter().filter(|r| !r.converged).count().to_string(),
            runs.iter().filter(|r| !r.deterministic).count().to_string(),
            format!("{min:.1}"),
            format!("{mean:.1}"),
            format!("{max:.1}"),
            runs.iter().map(|r| r.malformed_dropped).sum::<u64>().to_string(),
            runs.iter().map(|r| r.frames_corrupted).sum::<u64>().to_string(),
            runs.iter().map(|r| r.frames_lost).sum::<u64>().to_string(),
        ]);
    }
    Figure {
        title: format!(
            "Chaos campaign: {} seeds/stack, {} flaps + {} crashes + k={} burst, \
             loss {} ppm / corrupt {} ppm / jitter {} us",
            cfg.seeds,
            cfg.chaos.flaps,
            cfg.chaos.crashes,
            cfg.chaos.k_concurrent,
            cfg.chaos.impairment.loss_ppm,
            cfg.chaos.impairment.corrupt_ppm,
            cfg.chaos.impairment.jitter / MICROS,
        ),
        headers: vec![
            "stack",
            "seeds",
            "faults",
            "loops",
            "blackholes",
            "unconverged",
            "non-det",
            "reconv-min-ms",
            "reconv-mean-ms",
            "reconv-max-ms",
            "malformed-drop",
            "corrupted",
            "lost",
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ChaosConfig {
        ChaosConfig {
            flaps: 3,
            crashes: 1,
            k_concurrent: 2,
            window: 3 * SECONDS,
            flows_per_pair: 2,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn schedule_is_deterministic_and_fully_healed() {
        let cfg = quick_cfg();
        let fabric = Fabric::build(cfg.params);
        let a = FaultSchedule::generate(7, &fabric, &cfg);
        let b = FaultSchedule::generate(7, &fabric, &cfg);
        assert_eq!(a.events, b.events);
        assert!(a.fault_count() > 0);

        // Replay: every interface ends up.
        let mut state = std::collections::HashMap::new();
        for e in &a.events {
            state.insert((e.node, e.port), e.up);
            assert!(e.at >= cfg.warmup && e.at <= cfg.heal_at());
        }
        assert!(state.values().all(|&up| up), "schedule leaves a port down");
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = quick_cfg();
        let fabric = Fabric::build(cfg.params);
        let a = FaultSchedule::generate(1, &fabric, &cfg);
        let b = FaultSchedule::generate(2, &fabric, &cfg);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn chaos_run_mrmtp_holds_invariants() {
        let r = run_chaos(11, Stack::Mrmtp, &quick_cfg());
        assert_eq!(r.loops, 0, "forwarding loop detected");
        assert_eq!(r.black_holes, 0, "black hole detected");
        assert_eq!(r.unreachable_pairs, 0);
        assert!(r.converged, "re-convergence exceeded bound: {:?}", r.convergence);
    }

    #[test]
    fn chaos_run_bgp_holds_invariants() {
        let r = run_chaos(11, Stack::BgpEcmp, &quick_cfg());
        assert_eq!(r.loops, 0, "forwarding loop detected");
        assert_eq!(r.black_holes, 0, "black hole detected");
        assert_eq!(r.unreachable_pairs, 0);
        assert!(r.converged, "re-convergence exceeded bound: {:?}", r.convergence);
    }

    #[test]
    fn local_repair_shrinks_the_chaos_loss_window() {
        // Same seed, same schedule, background cross-pod traffic through
        // the fault window; only the repair knob differs. Repair must
        // engage, must not add blackholes, and must hold the repair-loop
        // invariant on both stacks.
        let off_cfg = ChaosConfig { traffic_pairs: 2, ..quick_cfg() };
        let on_cfg = ChaosConfig { local_repair: true, ..off_cfg.clone() };
        for stack in [Stack::Mrmtp, Stack::BgpEcmp] {
            let off = run_chaos(11, stack, &off_cfg);
            let on = run_chaos(11, stack, &on_cfg);
            assert_eq!(on.repair_loops, 0, "repair loop on {}", stack.label());
            assert_eq!(on.loops, 0, "post-heal loop on {}", stack.label());
            assert!(
                on.window_blackholed <= off.window_blackholed,
                "{}: repair widened the loss window ({} on vs {} off)",
                stack.label(),
                on.window_blackholed,
                off.window_blackholed,
            );
            assert_eq!(off.window_repaired, 0, "repair engaged with the knob off");
            // Chaos is where BGP repair provably fires: impairment races
            // hand its FIB a locally-dead egress, which never happens in
            // the scripted TC runs (carrier loss tears the session and
            // rebuilds the FIB in the same event).
            assert!(on.window_repaired > 0, "repair never engaged on {}", stack.label());
        }
    }

    #[test]
    fn local_repair_runs_are_deterministic() {
        let cfg = ChaosConfig { local_repair: true, traffic_pairs: 2, ..quick_cfg() };
        for stack in [Stack::Mrmtp, Stack::BgpEcmp] {
            let a = run_chaos(5, stack, &cfg);
            let b = run_chaos(5, stack, &cfg);
            assert_eq!(a.digest, b.digest, "non-deterministic with repair on {}", stack.label());
            assert_eq!(a.repair_loops, 0);
        }
    }

    #[test]
    fn same_seed_same_digest() {
        let cfg = quick_cfg();
        let a = run_chaos(3, Stack::Mrmtp, &cfg);
        let b = run_chaos(3, Stack::Mrmtp, &cfg);
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn telemetry_does_not_perturb_chaos_digest() {
        // The determinism contract: attaching the sampler must leave the
        // per-seed digest bit-identical on every stack.
        let cfg = quick_cfg();
        for stack in [Stack::Mrmtp, Stack::BgpEcmp] {
            let bare = run_chaos(5, stack, &cfg);
            let (instrumented, bundle) = chaos_bundle(5, stack, &cfg, TelemetryConfig::default());
            assert_eq!(
                bare.digest, instrumented.digest,
                "telemetry perturbed the event stream on {}",
                stack.label()
            );
            let names: Vec<&str> = bundle.files().iter().map(|(n, _)| n.as_str()).collect();
            for want in ["schedule.jsonl", "spans.jsonl", "series.jsonl", "capture.txt"] {
                assert!(names.contains(&want), "missing {want} in {names:?}");
            }
            assert_eq!(bundle.meta().get("digest").unwrap().as_u64(), Some(bare.digest));
            assert!(bundle.meta().get("samples").unwrap().as_u64().unwrap() > 0);
            // Every schedule line parses back and carries a node name;
            // down transitions match the run's fault count.
            let sched = &bundle.files()[0].1;
            let mut downs = 0;
            for line in sched.lines() {
                let j = Json::parse(line).expect("valid JSON line");
                assert!(j.get("node").unwrap().as_str().is_some());
                downs += usize::from(j.get("up").unwrap().as_bool() == Some(false));
            }
            assert_eq!(downs, instrumented.faults);
        }
    }

    #[test]
    fn small_campaign_summary_renders() {
        let cfg = CampaignConfig {
            seeds: 2,
            check_determinism: false,
            chaos: quick_cfg(),
            ..CampaignConfig::default()
        };
        let result = run_campaign(&cfg);
        assert_eq!(result.runs.len(), 4);
        assert_eq!(result.violations(), 0);
        let fig = campaign_summary(&cfg, &result);
        assert!(fig.render().contains("stack"));
    }
}
