//! Property tests for the sharded engine's partitioning layer: every
//! node lands in exactly one shard, shard ids are dense, the spine
//! layers stay in the dedicated shard 0, and the conservative lookahead
//! really is a lower bound on every cross-shard link's delivery delay
//! (serialization of a minimum-size frame plus propagation — queueing
//! and jitter only add to it).

use dcn_experiments::{build_fabric_sim, Stack, StackTuning};
use dcn_sim::engine::MIN_WIRE_LEN;
use dcn_sim::link::LinkId;
use dcn_topology::{ClosParams, Fabric, Role};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The map from [`Fabric::shard_map`] assigns every node exactly one
    /// shard, uses dense ids 0..=max, and puts all fabric-wide spines in
    /// shard 0 whenever PoD shards exist.
    #[test]
    fn shard_map_covers_every_node_exactly_once(
        pods_half in 1usize..9,
        workers in 0usize..12,
    ) {
        let params = ClosParams::scaled(pods_half * 2).expect("even PoD count");
        let fabric = Fabric::build(params);
        let map = fabric.shard_map(workers);
        // Exactly-once coverage: the map is total over node indices (a
        // Vec can't assign a node twice, so totality is the whole claim).
        prop_assert_eq!(map.len(), fabric.nodes.len());
        // Dense shard ids: every id up to the max is inhabited.
        let shards = *map.iter().max().unwrap() as usize + 1;
        let mut seen = vec![false; shards];
        for &s in &map {
            seen[s as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "shard ids must be dense");
        let expected = 1 + params.pods.min(workers.saturating_sub(1));
        if workers > 1 {
            prop_assert_eq!(shards, expected);
            for (i, node) in fabric.nodes.iter().enumerate() {
                if matches!(node.role, Role::TopSpine { .. } | Role::ZoneSpine { .. }) {
                    prop_assert_eq!(map[i], 0, "spines live in the dedicated shard");
                } else {
                    prop_assert!(map[i] > 0, "PoD nodes stay out of the spine shard");
                }
            }
        } else {
            prop_assert_eq!(shards, 1);
        }
    }

    /// On a built fabric sim, every cross-shard link's minimum delivery
    /// delay is at least the lookahead the engine computed — the
    /// soundness condition of the conservative window protocol.
    #[test]
    fn cross_shard_links_never_beat_the_lookahead(
        pods_half in 1usize..5,
        workers in 2usize..7,
    ) {
        let params = ClosParams::scaled(pods_half * 2).expect("even PoD count");
        let built = build_fabric_sim(
            Fabric::build(params),
            Stack::Mrmtp,
            1,
            &[],
            StackTuning { workers, ..StackTuning::default() },
        );
        let map = built.sim.partition().expect("sharded build installs a partition");
        let lookahead = built.sim.lookahead().expect("lookahead derives from the partition");
        let mut crossings = 0usize;
        for li in 0..built.sim.link_count() {
            let (a, b) = built.sim.link_ends(LinkId(li as u32));
            if map[a.node.index()] != map[b.node.index()] {
                crossings += 1;
                let spec = built.sim.link_spec(LinkId(li as u32));
                let min_delay = spec.serialization(MIN_WIRE_LEN) + spec.propagation;
                prop_assert!(
                    min_delay >= lookahead,
                    "link {li}: min delay {min_delay} beats lookahead {lookahead}"
                );
            }
        }
        // A multi-shard Clos always has PoD-spine↔top-spine crossings,
        // and the lookahead must be exactly the tightest of them.
        prop_assert!(crossings > 0);
        prop_assert!(lookahead > 0 && lookahead < dcn_sim::Time::MAX);
    }
}
