//! Property tests for the sharded engine's partitioning layer and its
//! adaptive window batching: every node lands in exactly one shard,
//! shard ids are dense, the spine layers fill the leading spine shards
//! (splitting across several once workers exceed the PoD count), the
//! conservative lookahead really is a lower bound on every cross-shard
//! link's delivery delay (serialization of a minimum-size frame plus
//! propagation — queueing and jitter only add to it), and the batched
//! per-shard window bound never admits a cross-shard event inside the
//! span a shard executes without a barrier.

use dcn_experiments::{build_fabric_sim, Stack, StackTuning};
use dcn_sim::engine::{window_bounds, MIN_WIRE_LEN};
use dcn_sim::link::LinkId;
use dcn_sim::Time;
use dcn_topology::{ClosParams, Fabric, Role};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The map from [`Fabric::shard_map`] assigns every node exactly one
    /// shard, uses dense ids 0..=max, keeps the fabric-wide spines in
    /// the leading spine shards (several of them once `workers` exceeds
    /// the PoD count, balanced to within one node), and keeps PoD nodes
    /// out of them.
    #[test]
    fn shard_map_covers_every_node_exactly_once(
        pods_half in 1usize..9,
        workers in 0usize..24,
    ) {
        let params = ClosParams::scaled(pods_half * 2).expect("even PoD count");
        let fabric = Fabric::build(params);
        let map = fabric.shard_map(workers);
        // Exactly-once coverage: the map is total over node indices (a
        // Vec can't assign a node twice, so totality is the whole claim).
        prop_assert_eq!(map.len(), fabric.nodes.len());
        // Dense shard ids: every id up to the max is inhabited.
        let shards = *map.iter().max().unwrap() as usize + 1;
        let mut seen = vec![false; shards];
        for &s in &map {
            seen[s as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "shard ids must be dense");
        if workers > 1 {
            let spine_count = fabric
                .nodes
                .iter()
                .filter(|n| matches!(n.role, Role::TopSpine { .. } | Role::ZoneSpine { .. }))
                .count();
            let pod_shards = params.pods.min(workers - 1);
            let spine_shards = (workers - pod_shards).clamp(1, spine_count);
            prop_assert_eq!(shards, spine_shards + pod_shards);
            let mut spine_load = vec![0usize; spine_shards];
            for (i, node) in fabric.nodes.iter().enumerate() {
                if matches!(node.role, Role::TopSpine { .. } | Role::ZoneSpine { .. }) {
                    prop_assert!(
                        (map[i] as usize) < spine_shards,
                        "spines live in the leading spine shards"
                    );
                    spine_load[map[i] as usize] += 1;
                } else {
                    prop_assert!(
                        (map[i] as usize) >= spine_shards,
                        "PoD nodes stay out of the spine shards"
                    );
                }
            }
            let (lo, hi) = (spine_load.iter().min().unwrap(), spine_load.iter().max().unwrap());
            prop_assert!(hi - lo <= 1, "spine shards stay balanced: {spine_load:?}");
        } else {
            prop_assert_eq!(shards, 1);
        }
    }

    /// On a built fabric sim, every cross-shard link's minimum delivery
    /// delay is at least the lookahead the engine computed — the
    /// soundness condition of the conservative window protocol.
    #[test]
    fn cross_shard_links_never_beat_the_lookahead(
        pods_half in 1usize..5,
        // Up to 15 workers so the spine tier splits across shards
        // (workers > pods + 1) and spine↔spine boundaries, were any to
        // exist, would be caught here too.
        workers in 2usize..16,
    ) {
        let params = ClosParams::scaled(pods_half * 2).expect("even PoD count");
        let built = build_fabric_sim(
            Fabric::build(params),
            Stack::Mrmtp,
            1,
            &[],
            StackTuning { workers, ..StackTuning::default() },
        );
        let map = built.sim.partition().expect("sharded build installs a partition");
        let lookahead = built.sim.lookahead().expect("lookahead derives from the partition");
        let mut crossings = 0usize;
        for li in 0..built.sim.link_count() {
            let (a, b) = built.sim.link_ends(LinkId(li as u32));
            if map[a.node.index()] != map[b.node.index()] {
                crossings += 1;
                let spec = built.sim.link_spec(LinkId(li as u32));
                let min_delay = spec.serialization(MIN_WIRE_LEN) + spec.propagation;
                prop_assert!(
                    min_delay >= lookahead,
                    "link {li}: min delay {min_delay} beats lookahead {lookahead}"
                );
            }
        }
        // A multi-shard Clos always has PoD-spine↔top-spine crossings,
        // and the lookahead must be exactly the tightest of them.
        prop_assert!(crossings > 0);
        prop_assert!(lookahead > 0 && lookahead < dcn_sim::Time::MAX);
    }
}

// ----------------------------------------------------------------------
// Adaptive window batching: the horizon rule
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The safety property of [`window_bounds`]: whatever span a shard
    /// is granted, no cross-shard event can arrive inside it. A
    /// cross-shard event reaching shard `d` travels ≥1 hops of ≥ `la`
    /// each, so the earliest arrival is `next_s + la` for a one-hop
    /// chain from `s ≠ d` and `next_d + 2·la` for anything that bounces
    /// off `d`'s own output — the batched bound must stay at or below
    /// both, while never shrinking the unbatched window and never
    /// overrunning the stop target by more than the inclusive-end +1.
    #[test]
    fn batched_window_admits_no_cross_shard_event(
        next in proptest::collection::vec(0u64..1_000_000_000_000, 2..9),
        la in 1u64..10_000_000,
        target in 0u64..1_000_000_000_000,
    ) {
        let horizon: Time = *next.iter().min().unwrap();
        for shard in 0..next.len() {
            let batched = window_bounds(shard, &next, la, target, true);
            let plain = window_bounds(shard, &next, la, target, false);
            // Unanimous stop: both modes agree, and exactly when every
            // shard has published a next-event time past the target.
            prop_assert_eq!(batched.is_none(), horizon > target);
            prop_assert_eq!(plain.is_none(), horizon > target);
            let Some((h, end)) = batched else { continue };
            let (ph, pend) = plain.unwrap();
            prop_assert_eq!(h, horizon);
            prop_assert_eq!(ph, horizon);
            // Batching only ever widens the window, never past the
            // inclusive stop bound.
            prop_assert!(end >= pend, "batched span shrank: {end} < {pend}");
            prop_assert!(end <= target.saturating_add(1));
            // One-hop rule: every other shard's earliest cross-shard
            // effect lands at or after this shard's span end.
            for (s, &t) in next.iter().enumerate() {
                if s != shard {
                    prop_assert!(
                        t.saturating_add(la) >= end,
                        "shard {s} (next {t}) could inject before {end}"
                    );
                }
            }
            // Bounce rule: the shard's own output can return through a
            // peer no earlier than two lookaheads after its next event.
            prop_assert!(next[shard].saturating_add(2 * la) >= end);
            // With uniform lookahead the bound fuses at most two
            // windows: K ∈ {1, 2}.
            let k = (end - h).div_ceil(la).max(1);
            prop_assert!(k <= 2, "K = {k} exceeds the uniform-lookahead maximum");
        }
    }
}
