//! Local fast reroute acceptance: the paper's TC1–TC4 scripted failures
//! with the monitored flow pinned onto the failure chain and paced fast
//! enough (25 µs) that the engine's 500 µs carrier-detection latency
//! spans many packets, run with the `local_repair` knob off and on.
//!
//! The TC failures are one-sided: `Fabric::failure_point` downs a single
//! node's port, so only that node ever observes the failure locally —
//! and the interface view (the data plane's `port_up` mask) flips at the
//! failure instant while the protocol's carrier callback arrives a
//! `carrier_latency` later. That half-millisecond is exactly the window
//! in-data-plane repair exists for:
//!
//! * **BGP** applies no liveness at pick time, so with near-to-far
//!   traffic the carrier-side hop sprays into its locally-dead egress
//!   until the session tears down (TC1 at the ToR, TC3 at the spine
//!   uplink). Repair re-spreads over the surviving ECMP members and
//!   closes that window entirely — the ≥10× acceptance bound, measured
//!   non-vacuously.
//! * **MR-MTP** masks `port_up` inside every lookup already, so its
//!   carrier-side window is natively zero (`on == 0` side of the bound);
//!   the backup detour instead engages on far-to-near runs through hops
//!   holding an upper-loss holddown, covered by the engagement test.
//! * The residual far-side windows (hold-timer / Quick-to-Detect) have
//!   no local signal at any surviving hop and must stay untouched.

use dcn_experiments::{BuiltSim, RunSpec, Stack, TrafficDir};
use dcn_sim::time::MICROS;
use dcn_topology::{ClosParams, FailureCase};

const TCS: [FailureCase; 4] =
    [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4];

/// Fast enough that the 500 µs carrier-detection window spans ~20
/// packets of the monitored flow.
const FAST: u64 = 25 * MICROS;

/// Sum `(blackholed_in_window, locally_repaired)` over every router.
fn window_counters(built: &BuiltSim) -> (u64, u64) {
    let mut blackholed = 0;
    let mut repaired = 0;
    for (i, node) in built.fabric.nodes.iter().enumerate() {
        if !node.role.is_router() {
            continue;
        }
        let (b, r) = match built.stack {
            Stack::Mrmtp => {
                let s = built.mrmtp(i).stats();
                (s.blackholed_in_window, s.locally_repaired)
            }
            Stack::BgpEcmp | Stack::BgpEcmpBfd => {
                let s = built.bgp(i).stats();
                (s.blackholed_in_window, s.locally_repaired)
            }
        };
        blackholed += b;
        repaired += r;
    }
    (blackholed, repaired)
}

/// The storyboard must date a `repaired-locally` phase exactly when the
/// counters saw a repair.
fn assert_storyboard_matches(run: &dcn_experiments::InstrumentedRun, repairs: u64, label: &str) {
    let Some(t0) = run.failure_at else { return };
    let sb = dcn_metrics::storyboard::build(run.built.sim.trace(), t0);
    let text = dcn_metrics::storyboard::render(&sb, |n| run.built.sim.node_name(n).to_string());
    assert_eq!(
        repairs > 0,
        text.contains("repaired-locally"),
        "{label}: storyboard/counter mismatch ({repairs} repairs)\n{text}",
    );
}

#[test]
fn local_repair_meets_the_tc_loss_window_bound() {
    let mut engaged = [0u64; 2];
    for (s, stack) in [Stack::Mrmtp, Stack::BgpEcmp].into_iter().enumerate() {
        for tc in TCS {
            let spec = RunSpec::new(ClosParams::two_pod(), stack)
                .failing(tc)
                .with_traffic(TrafficDir::NearToFar)
                .with_traffic_interval(FAST);
            let off = spec.run_instrumented();
            let on = spec.with_local_repair(true).run_instrumented();
            let (off_bh, off_rep) = window_counters(&off.built);
            let (on_bh, on_rep) = window_counters(&on.built);
            eprintln!(
                "{} {tc:?}: off blackholed={off_bh} on blackholed={on_bh} repaired={on_rep}",
                stack.label(),
            );
            assert_eq!(off_rep, 0, "repair engaged with the knob off ({} {tc:?})", stack.label());
            // The acceptance bound: repair closes the loss window
            // entirely or shrinks it at least 10×.
            assert!(
                on_bh == 0 || on_bh * 10 <= off_bh,
                "{} {tc:?}: loss window not shrunk 10x ({on_bh} on vs {off_bh} off)",
                stack.label(),
            );
            assert_storyboard_matches(&on, on_rep, stack.label());
            engaged[s] += on_rep;
        }
    }
    // BGP repair must have genuinely fired across the sweep (TC1 at the
    // ToR, TC3 at the spine: ~20 packets each sprayed into the
    // locally-dead ECMP member, all re-spread). MR-MTP's zero is honest:
    // its plain lookup already masks dead ports, which *is* the paper's
    // local reaction — the backup detour is exercised by the engagement
    // test below instead.
    assert!(engaged[1] > 0, "BGP local repair never engaged across TC1-TC4");
}

#[test]
fn bgp_local_repair_closes_the_carrier_window() {
    // The headline numbers: with the fast monitored flow, BGP's
    // carrier-side hop blackholes ~20 packets during carrier detection
    // with repair off, and zero with repair on — end to end, not just at
    // the repairing hop.
    for tc in [FailureCase::Tc1, FailureCase::Tc3] {
        let spec = RunSpec::new(ClosParams::two_pod(), Stack::BgpEcmp)
            .failing(tc)
            .with_traffic(TrafficDir::NearToFar)
            .with_traffic_interval(FAST);
        let off = spec.run();
        let on = spec.with_local_repair(true).run();
        let off_lost = off.loss.expect("traffic ran").lost();
        let on_lost = on.loss.expect("traffic ran").lost();
        eprintln!("bgp {tc:?}: lost off={off_lost} on={on_lost}");
        assert!(off_lost > 0, "{tc:?}: no off-mode carrier window to close");
        assert_eq!(on_lost, 0, "{tc:?}: repair left end-to-end loss");
    }
}

#[test]
fn local_repair_engages_at_carrier_side_hops() {
    // Far-to-near MR-MTP traffic transits hops that both hold an
    // upper-loss holddown for the destination root and observe the dead
    // port locally — the state the backup detour exists for. The detour
    // must fire, must never widen the blackhole window, and must date
    // the storyboard phase.
    let mut engaged = 0u64;
    for tc in TCS {
        let spec = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
            .failing(tc)
            .with_traffic(TrafficDir::FarToNear)
            .with_traffic_interval(FAST);
        let off = spec.run_instrumented();
        let on = spec.with_local_repair(true).run_instrumented();
        let (off_bh, off_rep) = window_counters(&off.built);
        let (on_bh, on_rep) = window_counters(&on.built);
        eprintln!("mr-mtp far-to-near {tc:?}: off_bh={off_bh} on_bh={on_bh} repaired={on_rep}");
        assert_eq!(off_rep, 0, "repair engaged with the knob off ({tc:?})");
        assert!(
            on_bh <= off_bh,
            "{tc:?}: repair widened the blackhole window ({on_bh} on vs {off_bh} off)",
        );
        assert_storyboard_matches(&on, on_rep, "mr-mtp far-to-near");
        engaged += on_rep;
    }
    assert!(engaged > 0, "MR-MTP local repair never engaged across the far-to-near TC sweep");
}

#[test]
fn local_repair_leaves_delivery_metrics_sane() {
    // With repair on, the monitored flow must lose no MORE packets than
    // with it off, on every stack × direction × TC pairing — including
    // the far-side windows repair cannot touch.
    for (stack, dir) in [
        (Stack::Mrmtp, TrafficDir::NearToFar),
        (Stack::Mrmtp, TrafficDir::FarToNear),
        (Stack::BgpEcmp, TrafficDir::NearToFar),
        (Stack::BgpEcmp, TrafficDir::FarToNear),
    ] {
        for tc in [FailureCase::Tc1, FailureCase::Tc3] {
            let spec = RunSpec::new(ClosParams::two_pod(), stack)
                .failing(tc)
                .with_traffic(dir)
                .with_traffic_interval(FAST);
            let off = spec.run();
            let on = spec.with_local_repair(true).run();
            let (off_loss, on_loss) = (
                off.loss.expect("traffic ran").lost(),
                on.loss.expect("traffic ran").lost(),
            );
            eprintln!("{} {dir:?} {tc:?}: lost off={off_loss} on={on_loss}", stack.label());
            assert!(
                on_loss <= off_loss,
                "{} {tc:?}: repair increased monitored-flow loss ({on_loss} vs {off_loss})",
                stack.label(),
            );
        }
    }
}
