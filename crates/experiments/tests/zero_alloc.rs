//! The zero-allocation forwarding gate, measured rather than asserted.
//!
//! This test binary installs the counting `#[global_allocator]` (which
//! library unit tests cannot), soaks a converged fabric with cross-pod
//! traffic, and checks the headline fast-path claims:
//!
//! * **MR-MTP transit forwards with zero heap allocations.** Frames are
//!   immutable and refcounted, the compiled FIB is rebuilt only on
//!   route/port change, and ECMP picks a port by masking a bitset — so
//!   steady-state forwarding touches the allocator not at all.
//! * **BGP transit allocates exactly once per packet.** The TTL
//!   decrement + checksum rewrite forces one fresh buffer per hop
//!   (`FrameBuf::mutate_copy`); that's the cost of mutating IPv4
//!   headers in flight and is documented in DESIGN.md, not a
//!   regression.

use dcn_experiments::{build_fabric_sim, Stack, StackTuning};
use dcn_sim::alloc_track;
use dcn_sim::time::{MICROS, SECONDS};
use dcn_topology::{Addressing, ClosParams, Fabric};
use dcn_traffic::SendSpec;

#[global_allocator]
static ALLOC: alloc_track::CountingAllocator = alloc_track::CountingAllocator;

/// Converge a 2-pod fabric with four cross-pod flows, reset the counters
/// at steady state, run one more second, and return
/// (forwarded packets, allocations inside forwarding scopes).
fn soak(stack: Stack) -> (u64, u64) {
    let params = ClosParams::two_pod();
    let fabric = Fabric::build(params);
    let addr = Addressing::new(&fabric);
    let warmup = if stack == Stack::Mrmtp { 2 * SECONDS } else { 6 * SECONDS };
    let stop = warmup + 2 * SECONDS;
    let mut senders = Vec::new();
    for t in 0..params.tors_per_pod {
        let spec = |dst_tor: usize| {
            let mut s = SendSpec::new(
                addr.server_addr(dst_tor, 0).expect("server address"),
                warmup,
                stop,
            );
            s.interval = 100 * MICROS;
            s
        };
        senders.push((fabric.server(0, t, 0), spec(fabric.tor(1, t))));
        senders.push((fabric.server(1, t, 0), spec(fabric.tor(0, t))));
    }
    let mut built = build_fabric_sim(fabric, stack, 7, &senders, StackTuning::default());
    built.sim.run_until(warmup);
    alloc_track::reset();
    built.sim.run_until(warmup + SECONDS);
    (alloc_track::forwarded(), alloc_track::scoped_allocs())
}

#[test]
fn counting_allocator_is_live_in_this_binary() {
    let _v: Vec<u8> = Vec::with_capacity(64);
    assert!(
        alloc_track::counting_allocator_installed(),
        "global allocator not installed; the soak assertions below would be vacuous"
    );
}

#[test]
fn mrmtp_transit_forwards_without_allocating() {
    let (forwarded, allocs) = soak(Stack::Mrmtp);
    assert!(forwarded > 1_000, "soak too light to be meaningful: {forwarded} packets");
    assert_eq!(
        allocs, 0,
        "MR-MTP fast path allocated {allocs} times over {forwarded} forwards (expected 0)"
    );
}

#[test]
fn bgp_transit_allocates_exactly_once_per_packet() {
    let (forwarded, allocs) = soak(Stack::BgpEcmp);
    assert!(forwarded > 1_000, "soak too light to be meaningful: {forwarded} packets");
    assert_eq!(
        allocs, forwarded,
        "BGP fast path should allocate exactly the per-hop TTL-rewrite buffer \
         ({allocs} allocs over {forwarded} forwards)"
    );
}
