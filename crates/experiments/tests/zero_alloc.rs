//! The zero-allocation forwarding gate, measured rather than asserted.
//!
//! This test binary installs the counting `#[global_allocator]` (which
//! library unit tests cannot), soaks a converged fabric with cross-pod
//! traffic, and checks the headline fast-path claims:
//!
//! * **MR-MTP transit forwards with zero heap allocations.** Frames are
//!   immutable and refcounted, the compiled FIB is rebuilt only on
//!   route/port change, and ECMP picks a port by masking a bitset — so
//!   steady-state forwarding touches the allocator not at all.
//! * **BGP transit allocates exactly once per packet.** The TTL
//!   decrement + checksum rewrite forces one fresh buffer per hop
//!   (`FrameBuf::mutate_copy`); that's the cost of mutating IPv4
//!   headers in flight and is documented in DESIGN.md, not a
//!   regression.

use dcn_experiments::{build_fabric_sim, flows, BuiltSim, Stack, StackTuning};
use dcn_sim::alloc_track;
use dcn_sim::time::{MICROS, MILLIS, SECONDS};
use dcn_sim::{NodeId, PortId};
use dcn_topology::{Addressing, ClosParams, Fabric, FailureCase};
use dcn_traffic::SendSpec;

#[global_allocator]
static ALLOC: alloc_track::CountingAllocator = alloc_track::CountingAllocator;

/// Converge a 2-pod fabric with four cross-pod flows, reset the counters
/// at steady state, run one more second, and return
/// (forwarded packets, allocations inside forwarding scopes).
fn soak(stack: Stack) -> (u64, u64) {
    soak_with_workers(stack, 1, false)
}

/// [`soak`] on the sharded parallel engine: forwarding scopes are
/// per-thread, so router forwarding on worker threads is accounted
/// exactly as on the main thread, while the engine's own shard
/// setup/merge allocations stay outside every scope. With `profile`
/// the engine profiler records every window into pre-sized buffers —
/// also outside every forwarding scope.
fn soak_with_workers(stack: Stack, workers: usize, profile: bool) -> (u64, u64) {
    let params = ClosParams::two_pod();
    let fabric = Fabric::build(params);
    let addr = Addressing::new(&fabric);
    let warmup = if stack == Stack::Mrmtp { 2 * SECONDS } else { 6 * SECONDS };
    let stop = warmup + 2 * SECONDS;
    let mut senders = Vec::new();
    for t in 0..params.tors_per_pod {
        let spec = |dst_tor: usize| {
            let mut s = SendSpec::new(
                addr.server_addr(dst_tor, 0).expect("server address"),
                warmup,
                stop,
            );
            s.interval = 100 * MICROS;
            s
        };
        senders.push((fabric.server(0, t, 0), spec(fabric.tor(1, t))));
        senders.push((fabric.server(1, t, 0), spec(fabric.tor(0, t))));
    }
    let tuning = StackTuning { workers, profile, ..StackTuning::default() };
    let mut built = build_fabric_sim(fabric, stack, 7, &senders, tuning);
    built.sim.run_until(warmup);
    alloc_track::reset();
    built.sim.run_until(warmup + SECONDS);
    (alloc_track::forwarded(), alloc_track::scoped_allocs())
}

/// Like [`soak`], but with local fast reroute armed and the TC1
/// interface failure injected mid-measurement, the flow pinned onto the
/// failure chain at 25 µs pacing so the repair lookup stages genuinely
/// run (direction per stack as established by `tests/local_repair.rs`:
/// MR-MTP engages its backup detour far-to-near at holddown hops, BGP
/// re-spreads near-to-far at the carrier-side hop). Returns
/// (forwarded, scoped allocations, locally-repaired packets).
fn repair_soak(stack: Stack) -> (u64, u64, u64) {
    let params = ClosParams::two_pod();
    let fabric = Fabric::build(params);
    let addr = Addressing::new(&fabric);
    let near_ip = addr.server_addr(fabric.tor(0, 0), 0).expect("near server");
    let far_ip = addr.server_addr(fabric.tor(1, params.tors_per_pod - 1), 0).expect("far server");
    let (src_node, src_ip, dst_ip) = match stack {
        Stack::Mrmtp => (fabric.server(1, params.tors_per_pod - 1, 0), far_ip, near_ip),
        _ => (fabric.server(0, 0, 0), near_ip, far_ip),
    };
    let warmup = if stack == Stack::Mrmtp { 2 * SECONDS } else { 6 * SECONDS };
    let fail_at = warmup + 50 * MILLIS;
    let end = fail_at + 100 * MILLIS;
    let widths = [params.spines_per_pod, params.uplinks_per_spine];
    let (sp, dp) = flows::pin_flow(src_ip, dst_ip, &widths);
    let mut spec = SendSpec::new(dst_ip, warmup, end);
    spec.src_port = sp;
    spec.dst_port = dp;
    spec.interval = 25 * MICROS;
    let tuning = StackTuning { local_repair: true, ..StackTuning::default() };
    let mut built = build_fabric_sim(fabric, stack, 7, &[(src_node, spec)], tuning);
    built.sim.run_until(warmup);
    alloc_track::reset();
    let (node, port) = built.fabric.failure_point(FailureCase::Tc1);
    built.sim.schedule_port_down(fail_at, NodeId(node as u32), PortId(port as u16));
    built.sim.run_until(end);
    (alloc_track::forwarded(), alloc_track::scoped_allocs(), repaired_total(&built))
}

/// Sum `locally_repaired` over every router.
fn repaired_total(built: &BuiltSim) -> u64 {
    let mut repaired = 0;
    for (i, node) in built.fabric.nodes.iter().enumerate() {
        if !node.role.is_router() {
            continue;
        }
        repaired += match built.stack {
            Stack::Mrmtp => built.mrmtp(i).stats().locally_repaired,
            Stack::BgpEcmp | Stack::BgpEcmpBfd => built.bgp(i).stats().locally_repaired,
        };
    }
    repaired
}

#[test]
fn counting_allocator_is_live_in_this_binary() {
    let _v: Vec<u8> = Vec::with_capacity(64);
    assert!(
        alloc_track::counting_allocator_installed(),
        "global allocator not installed; the soak assertions below would be vacuous"
    );
}

#[test]
fn mrmtp_transit_forwards_without_allocating() {
    let (forwarded, allocs) = soak(Stack::Mrmtp);
    assert!(forwarded > 1_000, "soak too light to be meaningful: {forwarded} packets");
    assert_eq!(
        allocs, 0,
        "MR-MTP fast path allocated {allocs} times over {forwarded} forwards (expected 0)"
    );
}

#[test]
fn bgp_transit_allocates_exactly_once_per_packet() {
    let (forwarded, allocs) = soak(Stack::BgpEcmp);
    assert!(forwarded > 1_000, "soak too light to be meaningful: {forwarded} packets");
    assert_eq!(
        allocs, forwarded,
        "BGP fast path should allocate exactly the per-hop TTL-rewrite buffer \
         ({allocs} allocs over {forwarded} forwards)"
    );
}

#[test]
fn mrmtp_parallel_transit_forwards_without_allocating() {
    // The zero-alloc claim must survive the sharded engine: forwarding
    // runs on worker threads, but the per-thread scope accounting still
    // charges exactly the forwarding extents — and MR-MTP transit still
    // never touches the allocator. (The sequential soak above and this
    // one also forward the same packet count: digests are engine-blind.)
    let (seq_forwarded, _) = soak(Stack::Mrmtp);
    let (forwarded, allocs) = soak_with_workers(Stack::Mrmtp, 2, false);
    assert!(forwarded > 1_000, "soak too light to be meaningful: {forwarded} packets");
    assert_eq!(forwarded, seq_forwarded, "parallel soak diverged from sequential");
    assert_eq!(
        allocs, 0,
        "MR-MTP fast path allocated {allocs} times over {forwarded} parallel forwards"
    );
}

#[test]
fn mrmtp_profiled_transit_forwards_without_allocating() {
    // The profiler must not spend the zero-alloc budget: window records
    // land in buffers sized at shard setup, and every profiler touch
    // happens at window boundaries — outside the forwarding scopes this
    // counter charges. Zero allocations, profiled, on worker threads.
    let (forwarded, allocs) = soak_with_workers(Stack::Mrmtp, 2, true);
    assert!(forwarded > 1_000, "soak too light to be meaningful: {forwarded} packets");
    assert_eq!(
        allocs, 0,
        "profiled MR-MTP fast path allocated {allocs} times over {forwarded} forwards"
    );
}

#[test]
fn mrmtp_repairs_in_flight_without_allocating() {
    // The tentpole claim, CI-enforced: local fast reroute is an O(1)
    // in-data-plane action. With repair armed, a failure mid-soak, and
    // the backup detour genuinely firing, MR-MTP transit still touches
    // the allocator not at all — the backup port set is a precompiled
    // bitmask, the lazy FIB recompile reuses its fixed entry array, and
    // the once-per-root repair trace span is emitted outside the scope.
    let (forwarded, allocs, repaired) = repair_soak(Stack::Mrmtp);
    assert!(forwarded > 1_000, "soak too light to be meaningful: {forwarded} packets");
    assert!(repaired > 0, "failure injected but local repair never engaged");
    assert_eq!(
        allocs, 0,
        "MR-MTP repair path allocated {allocs} times over {forwarded} forwards \
         ({repaired} repaired; expected 0 allocations)"
    );
}

#[test]
fn bgp_repair_keeps_the_one_alloc_per_packet_budget() {
    // BGP's repair pick reuses the same TTL-rewrite buffer as the plain
    // pick: engaging the backup ECMP spread must not add allocations.
    let (forwarded, allocs, repaired) = repair_soak(Stack::BgpEcmp);
    assert!(forwarded > 1_000, "soak too light to be meaningful: {forwarded} packets");
    assert!(repaired > 0, "failure injected but local repair never engaged");
    assert_eq!(
        allocs, forwarded,
        "BGP repair path should keep exactly one alloc per forward \
         ({allocs} allocs over {forwarded} forwards, {repaired} repaired)"
    );
}
