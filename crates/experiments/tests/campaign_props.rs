//! Property tests for campaign grid expansion and the results store.
//!
//! Expansion must be exhaustive (one run per distinct grid point per
//! seed) and duplicate-free on the canonical key, even when the spec's
//! axis vectors arrive with repeated entries — hand-written JSON specs
//! do that. The store must round-trip records exactly: what `append`
//! wrote is what `records` reads back after a reopen.

use std::collections::BTreeSet;

use dcn_experiments::campaign::store::{RunRecord, StallRecord, Store};
use dcn_experiments::campaign::CampaignSpec;
use dcn_experiments::{Stack, TrafficDir};
use dcn_topology::FailureCase;
use proptest::prelude::*;

/// An axis vector drawn from `values` with repetition allowed, so the
/// dedup-before-expansion contract is actually exercised.
fn axis<T: Clone + std::fmt::Debug + 'static>(
    values: Vec<T>,
) -> impl Strategy<Value = Vec<T>> {
    prop::collection::vec(prop::sample::select(values), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Expansion yields exactly (product of deduped axis lengths) ×
    /// seeds runs, and every run has a distinct canonical key.
    #[test]
    fn expansion_is_exhaustive_and_duplicate_free(
        pods in axis(vec![2usize, 4, 6, 8]),
        stacks in axis(vec![Stack::Mrmtp, Stack::BgpEcmp, Stack::BgpEcmpBfd]),
        failures in axis(vec![
            None,
            Some(FailureCase::Tc1),
            Some(FailureCase::Tc2),
            Some(FailureCase::Tc3),
            Some(FailureCase::Tc4),
        ]),
        traffic in axis(vec![TrafficDir::None, TrafficDir::NearToFar, TrafficDir::FarToNear]),
        local_repair in axis(vec![false, true]),
        seeds in 1u64..5,
        base_seed in 0u64..1000,
        quick in any::<bool>(),
    ) {
        let spec = CampaignSpec {
            name: "prop".into(),
            pods: pods.clone(),
            stacks: stacks.clone(),
            failures: failures.clone(),
            traffic: traffic.clone(),
            local_repair: local_repair.clone(),
            seeds,
            base_seed,
            quick,
        };
        let distinct = |n: usize| n; // readability below
        let uniq = |v: Vec<String>| -> usize { v.into_iter().collect::<BTreeSet<_>>().len() };
        let expected = distinct(uniq(pods.iter().map(|p| p.to_string()).collect()))
            * uniq(stacks.iter().map(|s| format!("{s:?}")).collect())
            * uniq(failures.iter().map(|f| format!("{f:?}")).collect())
            * uniq(traffic.iter().map(|t| format!("{t:?}")).collect())
            * uniq(local_repair.iter().map(|b| b.to_string()).collect())
            * seeds as usize;
        prop_assert_eq!(spec.total_runs() as usize, expected);
        let runs = spec.expand().unwrap();
        prop_assert_eq!(runs.len(), expected, "expansion is exhaustive over distinct points");
        let keys: BTreeSet<String> = runs.iter().map(|r| r.key()).collect();
        prop_assert_eq!(keys.len(), runs.len(), "canonical keys are duplicate-free");
        let hashes: BTreeSet<u64> = runs.iter().map(|r| r.key_hash()).collect();
        prop_assert_eq!(hashes.len(), runs.len(), "key hashes don't collide on this grid");
    }

    /// Records survive append → reopen → read unchanged, and last-wins
    /// key resolution picks the most recently appended duplicate.
    #[test]
    fn store_round_trips_records(
        n in 1usize..8,
        digest in any::<u64>(),
        conv in prop::option::of((0u64..5_000_000).prop_map(|us| us as f64 / 1e3)),
        lost in prop::option::of(0u64..100),
        with_phases in any::<bool>(),
        with_stall in any::<bool>(),
        case in 0u64..1_000_000,
    ) {
        let records: Vec<RunRecord> = (0..n as u64)
            .map(|i| RunRecord {
                key: format!("seed={i}"),
                key_hash: i.wrapping_mul(0x9e37_79b9),
                pods: 2 + 2 * (i % 3),
                stack: "mrmtp".into(),
                failure: "tc1".into(),
                traffic: "none".into(),
                seed: i,
                local_repair: i % 2 == 0,
                digest: digest ^ i,
                convergence_ms: conv,
                blast_radius: 3 + i,
                control_bytes: 1000 * (i + 1),
                update_frames: 10 + i,
                packets_lost: lost,
                keepalive_frames: 200,
                phases: with_phases.then_some((1.0, 39.0, 0.5)),
                stall: with_stall.then_some(StallRecord {
                    execute_pct: 60.0,
                    barrier_pct: 20.0,
                    drain_pct: 10.0,
                    deposit_pct: 5.0,
                    other_pct: 5.0,
                }),
                wall_ms: 12.5,
            })
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "dcn-campaign-prop-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::create(&dir, "prop", dcn_telemetry::Json::Null, n as u64).unwrap();
        store.append_all(&records).unwrap();
        // Reopen from disk: everything must come back exactly.
        let reopened = Store::open(&dir).unwrap();
        let back = reopened.records().unwrap();
        prop_assert_eq!(&back, &records);
        // Duplicate key: the later append wins in latest().
        let mut rewrite = records[0].clone();
        rewrite.digest ^= 0xdead_beef;
        reopened.append(&rewrite).unwrap();
        let latest = reopened.latest().unwrap();
        prop_assert_eq!(latest.len(), n);
        prop_assert_eq!(latest.get("seed=0").unwrap(), &rewrite);
        std::fs::remove_dir_all(&dir).ok();
    }
}
