#[test]
fn stress_two_worker_stealing() {
    for round in 0..20000 {
        let items: Vec<u64> = (0..16).collect();
        let out = dcn_experiments::campaign::pool::fan_out(items, 2, |x| x);
        assert_eq!(out.len(), 16, "round {round}");
    }
}
