//! Equivalence suite for the engine's *invisible* optimizations.
//!
//! Two independent substitutions must never change observable behavior:
//!
//! 1. **Scheduler backends** — the timer wheel must be a drop-in
//!    replacement for the reference binary heap.
//! 2. **The data-plane fast path** — compiled FIBs plus parse-once frame
//!    metadata must forward every packet exactly as the slow path's
//!    decode → table-walk → re-encode does.
//!
//! For every paper failure case on both protocol stacks, and for
//! randomized chaos schedules, a run's trace digest must be
//! bit-identical whichever variant the spec selects — same events, same
//! order, same bytes on the wire.

use dcn_experiments::chaos::{run_chaos, trace_digest};
use dcn_experiments::{run_digest, ChaosConfig, RunSpec, Stack, TrafficDir};
use dcn_sim::time::{MICROS, MILLIS, SECONDS};
use dcn_sim::{Impairment, SchedulerKind};
use dcn_topology::{ClosParams, FailureCase};

fn digests_match(spec: RunSpec) {
    let heap = run_digest(spec.with_scheduler(SchedulerKind::Heap));
    let wheel = run_digest(spec.with_scheduler(SchedulerKind::Wheel));
    assert_eq!(heap, wheel, "backends diverged for {spec:?}");
}

#[test]
fn tc_cases_digest_identically_on_mrmtp() {
    for tc in [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4] {
        digests_match(RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp).failing(tc));
    }
}

#[test]
fn tc_cases_digest_identically_on_bgp() {
    for tc in [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4] {
        digests_match(RunSpec::new(ClosParams::two_pod(), Stack::BgpEcmp).failing(tc));
    }
}

#[test]
fn traffic_and_bfd_digest_identically() {
    // The headline data-plane case (traffic pins the flow onto the
    // failure chain) and the BFD stack, one TC each to bound runtime.
    digests_match(
        RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
            .failing(FailureCase::Tc1)
            .with_traffic(TrafficDir::NearToFar),
    );
    digests_match(RunSpec::new(ClosParams::two_pod(), Stack::BgpEcmpBfd).failing(FailureCase::Tc1));
}

/// A trimmed chaos config (short windows, light impairment) so three
/// seeds × two backends stay test-suite friendly.
fn quick_chaos() -> ChaosConfig {
    ChaosConfig {
        flaps: 3,
        crashes: 1,
        k_concurrent: 2,
        warmup: 2 * SECONDS,
        window: 2 * SECONDS,
        settle: 4 * SECONDS,
        convergence_bound: 4 * SECONDS,
        min_dwell: 100 * MILLIS,
        max_dwell: 500 * MILLIS,
        impairment: Impairment { loss_ppm: 1_000, corrupt_ppm: 5_000, jitter: 20 * MICROS },
        flows_per_pair: 1,
        ..ChaosConfig::default()
    }
}

#[test]
fn chaos_seeds_digest_identically_across_backends() {
    for seed in [11u64, 12, 13] {
        let heap_cfg = ChaosConfig { scheduler: SchedulerKind::Heap, ..quick_chaos() };
        let wheel_cfg = ChaosConfig { scheduler: SchedulerKind::Wheel, ..quick_chaos() };
        let heap = run_chaos(seed, Stack::Mrmtp, &heap_cfg);
        let wheel = run_chaos(seed, Stack::Mrmtp, &wheel_cfg);
        assert_eq!(
            heap.digest, wheel.digest,
            "chaos seed {seed}: backends diverged"
        );
    }
}

// ----------------------------------------------------------------------
// Fast-path equivalence: compiled FIBs + parse-once metadata on vs off
// ----------------------------------------------------------------------

fn fast_path_invisible(spec: RunSpec) {
    let on = run_digest(spec.with_fast_path(true));
    let off = run_digest(spec.with_fast_path(false));
    assert_eq!(on, off, "fast path changed behavior for {spec:?}");
}

#[test]
fn fast_path_digest_identical_on_mrmtp_tc_cases() {
    // Traffic pins monitored flows onto the failure chain so the digest
    // covers data forwarding through the event, not just control plane.
    for tc in [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4] {
        fast_path_invisible(
            RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
                .failing(tc)
                .with_traffic(TrafficDir::NearToFar),
        );
    }
}

#[test]
fn fast_path_digest_identical_on_bgp_tc_cases() {
    for tc in [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4] {
        fast_path_invisible(
            RunSpec::new(ClosParams::two_pod(), Stack::BgpEcmp)
                .failing(tc)
                .with_traffic(TrafficDir::FarToNear),
        );
    }
}

#[test]
fn fast_path_digest_identical_with_bfd() {
    fast_path_invisible(
        RunSpec::new(ClosParams::two_pod(), Stack::BgpEcmpBfd)
            .failing(FailureCase::Tc1)
            .with_traffic(TrafficDir::NearToFar),
    );
}

#[test]
fn fast_path_digest_identical_under_chaos() {
    // Chaos adds loss, corruption, jitter, flaps, and crashes — the
    // fast path must shrug all of it off (corrupted frames drop their
    // metadata in transit and fall back to the slow path).
    for seed in [21u64, 22] {
        let on = run_chaos(seed, Stack::Mrmtp, &ChaosConfig { fast_path: true, ..quick_chaos() });
        let off = run_chaos(seed, Stack::Mrmtp, &ChaosConfig { fast_path: false, ..quick_chaos() });
        assert_eq!(on.digest, off.digest, "chaos seed {seed}: fast path diverged");
    }
    let on = run_chaos(23, Stack::BgpEcmp, &ChaosConfig { fast_path: true, ..quick_chaos() });
    let off = run_chaos(23, Stack::BgpEcmp, &ChaosConfig { fast_path: false, ..quick_chaos() });
    assert_eq!(on.digest, off.digest, "chaos seed 23: fast path diverged on BGP");
}

// ----------------------------------------------------------------------
// Local-repair off-mode: bit-identical to the pre-repair engine
// ----------------------------------------------------------------------

/// Golden trace digests freezing the default configuration's observable
/// behavior (regenerate with
/// `cargo run --release -p dcn-experiments --example golden_digests`).
/// With `local_repair` off — the default — the backup-FIB compilation,
/// the repair lookup stages, and the `repaired` frame flag must all be
/// invisible: same events, same order, same bytes on the wire. Last
/// regenerated when event ordering moved from queue-insertion sequence
/// to content-derived `(creator, counter)` keys (the sharded-engine
/// prerequisite), which legitimately re-ordered same-instant events.
#[test]
fn local_repair_off_matches_pre_change_golden_digests() {
    const TC_GOLDEN: [(Stack, FailureCase, u64); 8] = [
        (Stack::Mrmtp, FailureCase::Tc1, 0x00ff3614cf01e8ba),
        (Stack::Mrmtp, FailureCase::Tc2, 0xe132178c1aba0cc0),
        (Stack::Mrmtp, FailureCase::Tc3, 0xdccf015a95ed2df4),
        (Stack::Mrmtp, FailureCase::Tc4, 0xc983295775a7438b),
        (Stack::BgpEcmp, FailureCase::Tc1, 0x0a357ba1af20277d),
        (Stack::BgpEcmp, FailureCase::Tc2, 0x20cfbc45434d44c0),
        (Stack::BgpEcmp, FailureCase::Tc3, 0x566b7dc8b4654688),
        (Stack::BgpEcmp, FailureCase::Tc4, 0x48cbac3a7516733c),
    ];
    for (stack, tc, golden) in TC_GOLDEN {
        let dir = match stack {
            Stack::Mrmtp => TrafficDir::NearToFar,
            _ => TrafficDir::FarToNear,
        };
        let d = run_digest(
            RunSpec::new(ClosParams::two_pod(), stack)
                .failing(tc)
                .with_traffic(dir),
        );
        assert_eq!(
            d, golden,
            "{} {tc:?}: off-mode digest drifted from the pre-repair golden",
            stack.label(),
        );
    }
    const CHAOS_GOLDEN: [(Stack, u64, u64); 3] = [
        (Stack::Mrmtp, 21, 0xba830cb9147a6072),
        (Stack::Mrmtp, 22, 0xe5ffeae81d0460da),
        (Stack::BgpEcmp, 23, 0xb4df7391f642ba29),
    ];
    for (stack, seed, golden) in CHAOS_GOLDEN {
        let r = run_chaos(seed, stack, &quick_chaos());
        assert_eq!(
            r.digest, golden,
            "{} chaos seed {seed}: off-mode digest drifted from the pre-repair golden",
            stack.label(),
        );
    }
}

// ----------------------------------------------------------------------
// Sharded parallel engine: bit-identical to the sequential reference
// ----------------------------------------------------------------------

fn parallel_invisible(spec: RunSpec) {
    let sequential = run_digest(spec);
    for workers in [2usize, 4, 8] {
        for batching in [true, false] {
            let parallel = run_digest(spec.with_workers(workers).with_batching(batching));
            assert_eq!(
                sequential, parallel,
                "sharded engine ({workers} workers, batching {batching}) diverged for {spec:?}"
            );
        }
    }
}

#[test]
fn parallel_digest_identical_on_mrmtp_tc_cases() {
    for tc in [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4] {
        parallel_invisible(
            RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
                .failing(tc)
                .with_traffic(TrafficDir::NearToFar),
        );
    }
}

#[test]
fn parallel_digest_identical_on_bgp_tc_cases() {
    for tc in [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4] {
        parallel_invisible(
            RunSpec::new(ClosParams::two_pod(), Stack::BgpEcmp)
                .failing(tc)
                .with_traffic(TrafficDir::FarToNear),
        );
    }
}

#[test]
fn parallel_digest_identical_under_chaos() {
    // Chaos is the hostile case for the sharded engine: random admin
    // flaps must mirror onto remote shards at the right instant, and
    // per-(link, direction) impairment streams must advance in sender
    // dispatch order regardless of which thread runs the sender.
    for (stack, seed) in [
        (Stack::Mrmtp, 11u64),
        (Stack::Mrmtp, 12),
        (Stack::Mrmtp, 13),
        (Stack::BgpEcmp, 11),
        (Stack::BgpEcmp, 12),
        (Stack::BgpEcmp, 13),
    ] {
        let sequential = run_chaos(seed, stack, &quick_chaos());
        for workers in [2usize, 4, 8] {
            for batch_windows in [true, false] {
                let cfg = ChaosConfig { workers, batch_windows, ..quick_chaos() };
                let parallel = run_chaos(seed, stack, &cfg);
                assert_eq!(
                    sequential.digest, parallel.digest,
                    "{} chaos seed {seed}: sharded engine ({workers} workers, \
                     batching {batch_windows}) diverged",
                    stack.label(),
                );
            }
        }
    }
}

#[test]
fn parallel_digest_identical_on_bigger_fabric() {
    // An 8-PoD fabric exercises many-shard partitions (spine shard + 7
    // PoD shards at workers=8) rather than the 2-PoD minimum, and at
    // workers=12 the spine tier itself splits across several shards.
    let spec = RunSpec::new(
        ClosParams::scaled(8).expect("8 PoDs is a valid scaled shape"),
        Stack::Mrmtp,
    )
    .failing(FailureCase::Tc3)
    .with_traffic(TrafficDir::NearToFar);
    let sequential = run_digest(spec);
    for workers in [4usize, 8, 12] {
        for batching in [true, false] {
            assert_eq!(
                sequential,
                run_digest(spec.with_workers(workers).with_batching(batching)),
                "sharded engine diverged on the 8-PoD fabric at {workers} workers \
                 (batching {batching})"
            );
        }
    }
}

// ----------------------------------------------------------------------
// Engine profiler: a pure host-clock observer, digests identical on/off
// ----------------------------------------------------------------------

/// The profiler reads `Instant` and fills pre-sized buffers; it never
/// touches event content, ordering, or the simulated clock. A profiled
/// run must therefore produce a bit-identical trace digest — on the
/// sequential engine and on the sharded one.
fn profiler_invisible(spec: RunSpec) {
    let off = run_digest(spec);
    assert_eq!(
        off,
        run_digest(spec.with_profile(true)),
        "profiler changed the sequential digest for {spec:?}"
    );
    assert_eq!(
        off,
        run_digest(spec.with_profile(true).with_workers(2)),
        "profiled sharded engine diverged for {spec:?}"
    );
}

#[test]
fn profiler_digest_identical_on_mrmtp_tc_cases() {
    for tc in [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4] {
        profiler_invisible(
            RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp)
                .failing(tc)
                .with_traffic(TrafficDir::NearToFar),
        );
    }
}

#[test]
fn profiler_digest_identical_on_bgp_tc_cases() {
    for tc in [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4] {
        profiler_invisible(
            RunSpec::new(ClosParams::two_pod(), Stack::BgpEcmp)
                .failing(tc)
                .with_traffic(TrafficDir::FarToNear),
        );
    }
}

#[test]
fn profiler_digest_identical_under_chaos() {
    // Loss, corruption, jitter, flaps, and crashes on both engines: the
    // profiler's window records must stay a read-only side channel.
    for (stack, seed) in [(Stack::Mrmtp, 11u64), (Stack::BgpEcmp, 12)] {
        let bare = run_chaos(seed, stack, &quick_chaos());
        for workers in [1usize, 2] {
            let cfg = ChaosConfig { profile: true, workers, ..quick_chaos() };
            let profiled = run_chaos(seed, stack, &cfg);
            assert_eq!(
                bare.digest,
                profiled.digest,
                "{} chaos seed {seed}: profiler changed the digest at {workers} worker(s)",
                stack.label(),
            );
        }
    }
}

#[test]
fn steady_state_digest_identical_without_failure() {
    let spec = RunSpec::new(ClosParams::two_pod(), Stack::Mrmtp);
    let heap = {
        let s = spec.with_scheduler(SchedulerKind::Heap);
        let ir = dcn_experiments::run_instrumented(s);
        trace_digest(&ir.built.sim)
    };
    let wheel = {
        let s = spec.with_scheduler(SchedulerKind::Wheel);
        let ir = dcn_experiments::run_instrumented(s);
        trace_digest(&ir.built.sim)
    };
    assert_eq!(heap, wheel, "telemetry-instrumented runs diverged");
}
