//! Property tests for the chaos campaign engine: randomized fault
//! schedules on the paper's 2-PoD fabric must be bit-deterministic per
//! seed and must never leave a forwarding loop or black hole after the
//! fabric heals and quiesces — for both protocol stacks.

use dcn_experiments::chaos::{run_chaos, ChaosConfig, FaultSchedule};
use dcn_experiments::Stack;
use dcn_sim::time::{MILLIS, SECONDS};
use dcn_topology::Fabric;
use proptest::prelude::*;

fn cfg_from(flaps: usize, crashes: usize, k: usize, corrupt_ppm: u32) -> ChaosConfig {
    let mut cfg = ChaosConfig {
        flaps,
        crashes,
        k_concurrent: k,
        // Keep runs short: a 4 s fault window still fits several
        // overlapping faults.
        window: 4 * SECONDS,
        flows_per_pair: 2,
        ..ChaosConfig::default()
    };
    cfg.impairment.corrupt_ppm = corrupt_ppm;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same seed → bit-identical schedule, and every interface the
    /// schedule takes down is back up by the end of the fault window.
    #[test]
    fn schedules_are_deterministic_and_healed(
        seed in 0u64..1_000_000,
        flaps in 0usize..8,
        crashes in 0usize..2,
        k in 0usize..4,
    ) {
        let cfg = cfg_from(flaps, crashes, k, 10_000);
        let fabric = Fabric::build(cfg.params);
        let a = FaultSchedule::generate(seed, &fabric, &cfg);
        let b = FaultSchedule::generate(seed, &fabric, &cfg);
        prop_assert_eq!(&a.events, &b.events);

        let mut state = std::collections::HashMap::new();
        for e in &a.events {
            prop_assert!(e.at >= cfg.warmup && e.at <= cfg.heal_at());
            state.insert((e.node, e.port), e.up);
        }
        prop_assert!(state.values().all(|&up| up));
    }

    /// Full chaos runs on the 2-PoD fabric: same-seed runs produce the
    /// same trace digest, and after quiescence there are no forwarding
    /// loops and no black holes — for both stacks.
    #[test]
    fn chaos_runs_deterministic_and_invariant_clean(
        seed in 0u64..1_000_000,
        flaps in 1usize..6,
        k in 0usize..3,
        corrupt in prop_oneof![Just(0u32), Just(10_000u32)],
    ) {
        let cfg = cfg_from(flaps, 1, k, corrupt);
        for stack in [Stack::Mrmtp, Stack::BgpEcmp] {
            let a = run_chaos(seed, stack, &cfg);
            let b = run_chaos(seed, stack, &cfg);
            prop_assert_eq!(a.digest, b.digest, "non-deterministic: {:?}", stack);
            prop_assert_eq!(a.loops, 0, "loops under {:?}", stack);
            prop_assert_eq!(a.black_holes, 0, "black holes under {:?}", stack);
            prop_assert_eq!(a.unreachable_pairs, 0);
            prop_assert!(
                a.converged,
                "stack {:?} still churning {:?} after heal",
                stack,
                a.convergence.map(|d| d / MILLIS)
            );
        }
    }
}
