//! Throwaway probe: dissect a black-holing chaos seed.

use dcn_experiments::chaos::ChaosConfig;
use dcn_experiments::{build_sim, Stack};
use dcn_sim::{Impairment, NodeId, PortId};
use dcn_topology::Role;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(39);
    let cfg = ChaosConfig::default();
    let mut built = build_sim(cfg.params, Stack::Mrmtp, seed, &[]);
    let schedule =
        dcn_experiments::chaos::FaultSchedule::generate(seed, &built.fabric, &cfg);
    for e in &schedule.events {
        let (node, port) = (NodeId(e.node as u32), PortId(e.port as u16));
        if e.up {
            built.sim.schedule_port_up(e.at, node, port);
        } else {
            built.sim.schedule_port_down(e.at, node, port);
        }
    }
    let heal_at = cfg.heal_at();
    built.sim.run_until(cfg.warmup);
    built.sim.set_impairment_all(cfg.impairment);
    built.sim.run_until(heal_at - 1);
    built.sim.set_impairment_all(Impairment::none());
    built.sim.run_until(cfg.end_at());

    let tors: Vec<usize> = built
        .fabric
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.role, Role::Tor { .. }))
        .map(|(i, _)| i)
        .collect();
    for &src in &tors {
        for &dst in &tors {
            if src == dst {
                continue;
            }
            let dst_ip = built.addr.server_addr(dst, 0).unwrap();
            let root = dst_ip.third_octet();
            for f in 0..4u16 {
                let src_ip = built.addr.server_addr(src, 0).unwrap();
                let hash =
                    dcn_wire::flow_hash(src_ip, dst_ip, dcn_wire::IPPROTO_UDP, 1000 + f, 5000);
                let f16 = (hash & 0xFFFF) as u16;
                // walk with trail
                let mut trail = vec![src];
                let mut cur = src;
                let mut outcome = "ok";
                loop {
                    if cur == dst {
                        break;
                    }
                    if trail[..trail.len() - 1].contains(&cur) {
                        outcome = "LOOP";
                        break;
                    }
                    let port = built.mrmtp(cur).forwarding_port(root, f16, |p| {
                        built.sim.port_up(NodeId(cur as u32), p)
                    });
                    let Some(port) = port else {
                        outcome = "BLACKHOLE";
                        break;
                    };
                    cur = built
                        .sim
                        .peer_of(NodeId(cur as u32), port)
                        .unwrap()
                        .node
                        .0 as usize;
                    trail.push(cur);
                }
                if outcome != "ok" {
                    println!(
                        "{outcome}: {}->{} flow {f} root {root} trail {:?}",
                        built.sim.node_name(NodeId(src as u32)),
                        built.sim.node_name(NodeId(dst as u32)),
                        trail
                            .iter()
                            .map(|&n| built.sim.node_name(NodeId(n as u32)))
                            .collect::<Vec<_>>()
                    );
                    let stuck = *trail.last().unwrap();
                    println!(
                        "  stuck at {} (tier {}): candidates for root {root}: {:?}",
                        built.sim.node_name(NodeId(stuck as u32)),
                        built.mrmtp(stuck).tier(),
                        built.mrmtp(stuck).forwarding_candidates(root, |p| {
                            built.sim.port_up(NodeId(stuck as u32), p)
                        })
                    );
                    println!("{}", built.mrmtp(stuck).render_table());
                }
            }
        }
    }
}
