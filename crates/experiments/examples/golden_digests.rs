//! Regenerate the golden trace digests pinned by
//! `tests/equivalence.rs::local_repair_off_matches_pre_change_golden_digests`.
//!
//! Those constants freeze the observable behavior of the default
//! (`local_repair=off`) configuration at the commit that introduced the
//! local-repair subsystem: any later change that perturbs an off-mode
//! trace shows up as a digest mismatch. If an *intentional* behavior
//! change lands, re-run this and paste the new table into the test:
//!
//! ```text
//! cargo run --release -p dcn-experiments --example golden_digests
//! ```

use dcn_experiments::chaos::{run_chaos, ChaosConfig};
use dcn_experiments::{run_digest, RunSpec, Stack, TrafficDir};
use dcn_sim::time::{MICROS, MILLIS, SECONDS};
use dcn_sim::Impairment;
use dcn_topology::{ClosParams, FailureCase};

/// Must match `quick_chaos()` in `tests/equivalence.rs`.
fn quick_chaos() -> ChaosConfig {
    ChaosConfig {
        flaps: 3,
        crashes: 1,
        k_concurrent: 2,
        warmup: 2 * SECONDS,
        window: 2 * SECONDS,
        settle: 4 * SECONDS,
        convergence_bound: 4 * SECONDS,
        min_dwell: 100 * MILLIS,
        max_dwell: 500 * MILLIS,
        impairment: Impairment { loss_ppm: 1_000, corrupt_ppm: 5_000, jitter: 20 * MICROS },
        flows_per_pair: 1,
        ..ChaosConfig::default()
    }
}

fn main() {
    let cases = [FailureCase::Tc1, FailureCase::Tc2, FailureCase::Tc3, FailureCase::Tc4];
    println!("// (stack, tc, digest) — TC cases with traffic pinned onto the failure chain");
    for (stack, dir) in [
        (Stack::Mrmtp, TrafficDir::NearToFar),
        (Stack::BgpEcmp, TrafficDir::FarToNear),
    ] {
        for tc in cases {
            let d = run_digest(
                RunSpec::new(ClosParams::two_pod(), stack)
                    .failing(tc)
                    .with_traffic(dir),
            );
            println!("({:?}, {:?}, {:#018x}),", stack, tc, d);
        }
    }
    println!("// (stack, chaos seed, digest)");
    for (stack, seed) in [
        (Stack::Mrmtp, 21u64),
        (Stack::Mrmtp, 22),
        (Stack::BgpEcmp, 23),
    ] {
        let r = run_chaos(seed, stack, &quick_chaos());
        println!("({:?}, {}, {:#018x}),", stack, seed, r.digest);
    }
}
