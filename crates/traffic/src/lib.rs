//! # dcn-traffic — sequenced traffic generator and receiver analyzer
//!
//! Reproduces the paper's custom-built traffic generator: a sender emits
//! back-to-back UDP packets carrying sequence numbers; the receiver-side
//! analyzer counts lost, duplicated and out-of-sequence packets. Every
//! server in the emulation runs a [`TrafficHost`], which can act as
//! sender, receiver, or both.
//!
//! The generator's 5-tuple is configurable so the experiment harness can
//! pin the monitored flow onto the paper's failure chain
//! (ToR₁₁ → S1_1 → S2_1) under both MR-MTP's and ECMP's flow hashing.

use std::any::Any;

use dcn_sim::time::{millis, Duration, Time};
use dcn_sim::{Ctx, FrameBuf, FrameClass, FrameMeta, PortId, Protocol};
use dcn_wire::{
    flow_hash, EtherType, EthernetFrame, IpAddr4, Ipv4Packet, MacAddr, UdpDatagram, IPPROTO_UDP,
};

/// Magic marker identifying generator packets (so stray traffic never
/// pollutes the analysis).
pub const TRAFFIC_MAGIC: u32 = 0x7261_FF1C;

/// What a sender should transmit.
#[derive(Clone, Copy, Debug)]
pub struct SendSpec {
    pub dst: IpAddr4,
    pub src_port: u16,
    pub dst_port: u16,
    /// Inter-packet gap (the paper sent back-to-back; we pace at a
    /// configurable rate so loss counts scale with outage duration).
    pub interval: Duration,
    /// Stop after this many packets (u64::MAX = until `stop_at`).
    pub count: u64,
    pub start_at: Time,
    pub stop_at: Time,
    /// UDP payload length including the 12-byte header (magic + seq).
    pub payload_len: usize,
}

impl SendSpec {
    pub fn new(dst: IpAddr4, start_at: Time, stop_at: Time) -> SendSpec {
        SendSpec {
            dst,
            src_port: 5000,
            dst_port: 6000,
            interval: millis(3), // ≈333 pkt/s
            count: u64::MAX,
            start_at,
            stop_at,
            payload_len: 100,
        }
    }
}

/// Receiver-side analysis, in the terms the paper reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LossReport {
    /// Packets the sender transmitted.
    pub sent: u64,
    /// Packets that arrived (including duplicates).
    pub arrived: u64,
    /// Distinct sequence numbers seen.
    pub unique: u64,
    /// Arrivals of already-seen sequence numbers.
    pub duplicates: u64,
    /// Arrivals with a sequence number below the highest already seen.
    pub out_of_order: u64,
}

impl LossReport {
    /// Packets lost = sent but never seen.
    pub fn lost(&self) -> u64 {
        self.sent.saturating_sub(self.unique)
    }

    /// Loss ratio in [0, 1].
    pub fn loss_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost() as f64 / self.sent as f64
        }
    }
}

/// A server that can generate and/or analyze sequenced traffic.
pub struct TrafficHost {
    ip: IpAddr4,
    spec: Option<SendSpec>,
    next_seq: u64,
    sent: u64,
    /// Bitmap of received sequence numbers (senders count from 0).
    seen: Vec<u64>,
    arrived: u64,
    duplicates: u64,
    out_of_order: u64,
    max_seen: Option<u64>,
}

const TOKEN_SEND: u64 = 1;

/// Upper bound on tracked sequence numbers (a 2 MiB `seen` bitmap). A
/// frame corrupted on an impaired wire can pass the magic check yet
/// carry an arbitrary 8-byte sequence field; without a bound one such
/// frame would make [`TrafficHost::ingest_frame`] resize the bitmap to
/// exabytes. No legitimate sender reaches 16M sequence numbers at the
/// generator's pacing, so anything past the cap is dropped as corrupt.
const MAX_TRACKED_SEQ: u64 = 1 << 24;

impl TrafficHost {
    pub fn new(ip: IpAddr4) -> TrafficHost {
        TrafficHost {
            ip,
            spec: None,
            next_seq: 0,
            sent: 0,
            seen: Vec::new(),
            arrived: 0,
            duplicates: 0,
            out_of_order: 0,
            max_seen: None,
        }
    }

    /// Configure this host as a sender (do this before the simulation
    /// delivers `on_start`, i.e. before the first `run_until`).
    pub fn with_send(mut self, spec: SendSpec) -> TrafficHost {
        self.spec = Some(spec);
        self
    }

    pub fn ip(&self) -> IpAddr4 {
        self.ip
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// The receiver-side report; `sent` must come from the sending host.
    pub fn report(&self, sent: u64) -> LossReport {
        LossReport {
            sent,
            arrived: self.arrived,
            unique: self.seen.iter().map(|w| w.count_ones() as u64).sum(),
            duplicates: self.duplicates,
            out_of_order: self.out_of_order,
        }
    }

    fn mark_seen(&mut self, seq: u64) -> bool {
        let (word, bit) = ((seq / 64) as usize, seq % 64);
        if self.seen.len() <= word {
            self.seen.resize(word + 1, 0);
        }
        let newly = self.seen[word] & (1 << bit) == 0;
        self.seen[word] |= 1 << bit;
        newly
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>) {
        let Some(spec) = self.spec else { return };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent += 1;
        let mut payload = Vec::with_capacity(spec.payload_len.max(12));
        payload.extend_from_slice(&TRAFFIC_MAGIC.to_be_bytes());
        payload.extend_from_slice(&seq.to_be_bytes());
        payload.resize(spec.payload_len.max(12), 0);
        let udp = UdpDatagram::new(spec.src_port, spec.dst_port, payload);
        let pkt = Ipv4Packet::new(self.ip, spec.dst, IPPROTO_UDP, udp.encode());
        let frame = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::for_node_port(ctx.node().0, 0),
            ethertype: EtherType::Ipv4,
            payload: pkt.encode(),
        };
        // Parse-once: the 5-tuple is fixed per spec, so the first-hop
        // router can skip the IPv4 decode entirely (the hash never
        // covers TTL, so it stays valid across hops).
        let meta = FrameMeta::Ipv4Data {
            dst: spec.dst,
            flow: flow_hash(self.ip, spec.dst, IPPROTO_UDP, spec.src_port, spec.dst_port),
            ttl: pkt.ttl,
            repaired: false,
        };
        ctx.send_meta(PortId(0), frame.encode(), FrameClass::Data, meta);
    }

    /// Test/analysis entry point: process one raw Ethernet frame as if it
    /// had arrived on the wire.
    pub fn ingest_frame(&mut self, frame: &[u8]) {
        let Ok(eth) = EthernetFrame::decode(frame) else { return };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok(pkt) = Ipv4Packet::decode(&eth.payload) else { return };
        if pkt.dst != self.ip || pkt.protocol != IPPROTO_UDP {
            return;
        }
        let Ok(udp) = UdpDatagram::decode(&pkt.payload) else { return };
        if udp.payload.len() < 12 {
            return;
        }
        let magic = u32::from_be_bytes(udp.payload[0..4].try_into().unwrap());
        if magic != TRAFFIC_MAGIC {
            return;
        }
        let seq = u64::from_be_bytes(udp.payload[4..12].try_into().unwrap());
        if seq >= MAX_TRACKED_SEQ {
            return;
        }
        self.arrived += 1;
        if self.mark_seen(seq) {
            if let Some(max) = self.max_seen {
                if seq < max {
                    self.out_of_order += 1;
                }
            }
        } else {
            self.duplicates += 1;
        }
        self.max_seen = Some(self.max_seen.map_or(seq, |m| m.max(seq)));
    }
}

impl Protocol for TrafficHost {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(spec) = self.spec {
            ctx.set_timer(spec.start_at.saturating_sub(ctx.now()), TOKEN_SEND);
        }
    }

    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, frame: &FrameBuf) {
        self.ingest_frame(frame);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_SEND {
            return;
        }
        let Some(spec) = self.spec else { return };
        let now = ctx.now();
        if now < spec.start_at || now >= spec.stop_at || self.sent >= spec.count {
            return;
        }
        self.emit(ctx);
        if self.sent < spec.count {
            ctx.set_timer(spec.interval, TOKEN_SEND);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::link::LinkSpec;
    use dcn_sim::SimBuilder;

    /// Two hosts wired back to back: everything sent is received.
    #[test]
    fn direct_link_delivery_and_report() {
        let a_ip = IpAddr4::new(10, 0, 0, 1);
        let b_ip = IpAddr4::new(10, 0, 0, 2);
        let mut spec = SendSpec::new(b_ip, 0, millis(100));
        spec.interval = millis(1);
        let mut b = SimBuilder::new(1);
        let a = b.add_node("a", Box::new(TrafficHost::new(a_ip).with_send(spec)));
        let c = b.add_node("b", Box::new(TrafficHost::new(b_ip)));
        b.add_link(a, c, LinkSpec::default());
        let mut sim = b.build();
        sim.run_until(millis(200));
        let sent = sim.node_as::<TrafficHost>(a).unwrap().sent();
        assert!(sent >= 99, "≈100 packets at 1 ms: {sent}");
        let report = sim.node_as::<TrafficHost>(c).unwrap().report(sent);
        assert_eq!(report.lost(), 0);
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.out_of_order, 0);
        assert_eq!(report.arrived, sent);
        assert!(report.loss_ratio() < 1e-9);
    }

    #[test]
    fn loss_counts_gap_packets() {
        let mut h = TrafficHost::new(IpAddr4(1));
        for s in [0u64, 1, 5] {
            assert!(h.mark_seen(s));
        }
        h.arrived = 3;
        let r = h.report(6);
        assert_eq!(r.unique, 3);
        assert_eq!(r.lost(), 3);
        assert!((r.loss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_and_reorder_bitmap() {
        let mut h = TrafficHost::new(IpAddr4::new(10, 0, 0, 9));
        assert!(h.mark_seen(4));
        assert!(!h.mark_seen(4), "duplicate detected");
        assert!(h.mark_seen(2), "older but new");
        assert!(h.mark_seen(1000), "bitmap grows");
    }

    #[test]
    fn sender_respects_count_and_window() {
        let b_ip = IpAddr4::new(10, 0, 0, 2);
        let mut spec = SendSpec::new(b_ip, millis(10), millis(1000));
        spec.interval = millis(1);
        spec.count = 5;
        let mut b = SimBuilder::new(1);
        let a = b.add_node(
            "a",
            Box::new(TrafficHost::new(IpAddr4::new(10, 0, 0, 1)).with_send(spec)),
        );
        let c = b.add_node("b", Box::new(TrafficHost::new(b_ip)));
        b.add_link(a, c, LinkSpec::default());
        let mut sim = b.build();
        sim.run_until(millis(500));
        assert_eq!(sim.node_as::<TrafficHost>(a).unwrap().sent(), 5);
        let r = sim.node_as::<TrafficHost>(c).unwrap().report(5);
        assert_eq!(r.unique, 5);
    }

    #[test]
    fn foreign_and_malformed_packets_are_ignored() {
        let ip = IpAddr4::new(10, 0, 0, 2);
        let mut h = TrafficHost::new(ip);
        // Wrong magic.
        let udp = UdpDatagram::new(1, 2, vec![0; 20]);
        let pkt = Ipv4Packet::new(IpAddr4(9), ip, IPPROTO_UDP, udp.encode());
        let frame = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr([2; 6]),
            ethertype: EtherType::Ipv4,
            payload: pkt.encode(),
        };
        h.ingest_frame(&frame.encode());
        // Wrong destination.
        let pkt2 = Ipv4Packet::new(IpAddr4(9), IpAddr4(77), IPPROTO_UDP, udp.encode());
        let frame2 = EthernetFrame { payload: pkt2.encode(), ..frame.clone() };
        h.ingest_frame(&frame2.encode());
        // Truncated garbage.
        h.ingest_frame(&[1, 2, 3]);
        assert_eq!(h.report(0).arrived, 0);
    }

    #[test]
    fn out_of_order_arrivals_are_counted() {
        let ip = IpAddr4::new(10, 0, 0, 2);
        let mut h = TrafficHost::new(ip);
        let mk = |seq: u64| {
            let mut payload = Vec::new();
            payload.extend_from_slice(&TRAFFIC_MAGIC.to_be_bytes());
            payload.extend_from_slice(&seq.to_be_bytes());
            let udp = UdpDatagram::new(1, 2, payload);
            let pkt = Ipv4Packet::new(IpAddr4(9), ip, IPPROTO_UDP, udp.encode());
            EthernetFrame {
                dst: MacAddr::BROADCAST,
                src: MacAddr([2; 6]),
                ethertype: EtherType::Ipv4,
                payload: pkt.encode(),
            }
            .encode()
        };
        for seq in [0u64, 2, 1, 3, 3] {
            h.ingest_frame(&mk(seq));
        }
        let r = h.report(4);
        assert_eq!(r.arrived, 5);
        assert_eq!(r.unique, 4);
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.out_of_order, 1, "seq 1 arrived after 2");
        assert_eq!(r.lost(), 0);
    }
}
