//! Offline property-testing shim.
//!
//! The build environment has no crates.io access, so this in-repo crate
//! provides the subset of the real `proptest` API the workspace's tests
//! use: the `proptest!` / `prop_assert*!` / `prop_assume!` / `prop_oneof!`
//! macros, `Strategy` with `prop_map`, integer-range / tuple / collection
//! strategies, and `any::<T>()` for the primitive types that appear in
//! tests. Generation is purely random (seeded deterministically from the
//! test's module path and name) — there is no shrinking, so a failure
//! reports the case index instead of a minimal counterexample.

use std::ops::{Range, RangeFrom, RangeInclusive};

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic SplitMix64 generator driving all strategies.
pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the test's full path gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs — try another case.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-`proptest!` block configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike real proptest there is no value tree or
/// shrinking; `generate` draws one concrete value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// `prop_oneof!` support: draw uniformly among boxed alternatives.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u128) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u128 - self.start as u128;
                (self.start as u128 + rng.below(span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = *self.end() as u128 - *self.start() as u128 + 1;
                (*self.start() as u128 + rng.below(span)) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = <$t>::MAX as u128 - self.start as u128 + 1;
                (self.start as u128 + rng.below(span)) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.below(span as u128) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform draw from a fixed set of values.
    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u128) as usize].clone()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// `None` a quarter of the time, `Some(inner draw)` otherwise —
    /// the real crate's default `Some` probability is 0.75 too.
    pub struct OfStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy(inner)
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Drive one `proptest!`-declared test: loop until `cases` inputs have
/// been accepted (assume-rejections retry with fresh inputs, up to a
/// bound), panicking on the first failing case.
pub fn run_proptest<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 20 + 1000;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: too many prop_assume! rejections ({attempts} attempts for {} cases)",
            config.cases
        );
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed on accepted case {accepted}: {msg}")
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let full_name = concat!(module_path!(), "::", stringify!($name));
            $crate::run_proptest(full_name, &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                result
            });
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`: {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..2000 {
            let v = Strategy::generate(&(3u8..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::generate(&(1u8..=255), &mut rng);
            assert!(w >= 1);
            let x = Strategy::generate(&(250u8..), &mut rng);
            assert!(x >= 250);
        }
    }

    #[test]
    fn same_name_same_sequence() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(a in 0u32..100, v in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert!(v.len() < 8, "len {}", v.len());
            if a == 99 {
                return Ok(());
            }
            prop_assert_ne!(a, 13u32);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(op in prop_oneof![
            (0u16..4).prop_map(|p| ("a", p)),
            (4u16..8).prop_map(|p| ("b", p)),
        ]) {
            match op {
                ("a", p) => prop_assert!(p < 4),
                ("b", p) => prop_assert!((4..8).contains(&p)),
                _ => prop_assert!(false, "unexpected arm"),
            }
        }
    }
}
