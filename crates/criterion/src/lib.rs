//! Offline benchmarking shim.
//!
//! The build environment has no crates.io access, so this in-repo crate
//! provides the subset of the real `criterion` API the workspace's
//! benches use: `Criterion`, `benchmark_group` → `BenchmarkGroup` with
//! `sample_size` / `measurement_time` / `warm_up_time` / `bench_function`
//! / `finish`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is simple wall-clock sampling: each
//! benchmark runs a warm-up, then `sample_size` timed batches, and
//! reports mean / min / max per iteration to stdout.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as in real criterion.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

pub mod measurement {
    /// Marker measurement type; the shim only measures wall-clock time.
    pub struct WallTime;
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("\n## bench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            settings: Settings::default(),
            _measurement: std::marker::PhantomData,
        }
    }
}

pub struct BenchmarkGroup<'c, M> {
    _criterion: &'c mut Criterion,
    name: String,
    settings: Settings,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.settings.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warm-up: also calibrates how many iterations fit in a sample.
        let warm_start = Instant::now();
        let mut per_iter = Duration::ZERO;
        while warm_start.elapsed() < self.settings.warm_up_time {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter = b.elapsed.max(Duration::from_nanos(1));
        }

        let samples = self.settings.sample_size;
        let budget_per_sample = self.settings.measurement_time / samples as u32;
        let iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;

        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            b.iters = iters_per_sample;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            times.push(b.elapsed / iters_per_sample as u32);
        }

        let mean = times.iter().sum::<Duration>() / samples as u32;
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({samples} samples x {iters_per_sample} iters)",
            self.name
        );
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(30));
        g.warm_up_time(Duration::from_millis(5));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn group_runs() {
        let mut c = Criterion::default();
        tiny(&mut c);
    }
}
