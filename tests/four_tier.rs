//! Integration: the §IX multi-tier extension. MR-MTP's VID scheme and
//! BGP's ASN plan both generalize to a four-tier (zoned) folded-Clos
//! without protocol changes — exactly the scaling claim the paper makes
//! for MR-MTP ("the scheme can easily scale to any number of spine
//! tiers").

use dcn_experiments::{build_four_tier_sim, Stack};
use dcn_mrmtp::MrmtpRouter;
use dcn_sim::time::secs;
use dcn_sim::{NodeId, PortId};
use dcn_topology::{FailureCase, FourTierParams, PortKind};
use dcn_traffic::{SendSpec, TrafficHost};

#[test]
fn mrmtp_builds_depth_four_meshed_trees() {
    let p4 = FourTierParams::small();
    let mut built = build_four_tier_sim(p4, Stack::Mrmtp, 1, &[]);
    built.sim.run_until(secs(3));
    // Zone spines hold one VID per ToR in their zone (4 racks/zone).
    let zs = built.mrmtp(built.fabric.zone_spine(0, 0));
    assert_eq!(zs.vid_table().own_entry_count(), 4, "{}", zs.render_table());
    // Top spines hold one depth-4 VID per ToR in the whole fabric.
    for k in 0..built.fabric.top_spine_count() {
        let t: &MrmtpRouter = built.mrmtp(built.fabric.top_spine(k));
        assert_eq!(t.vid_table().own_entry_count(), 8, "{}", t.name());
        for root in 11..19u8 {
            let vids = t.vid_table().vids_for(root);
            assert_eq!(vids.len(), 1);
            assert_eq!(vids[0].vid.depth(), 4, "depth-4 VID: {}", vids[0].vid);
        }
    }
}

#[test]
fn mrmtp_forwards_across_zones() {
    let p4 = FourTierParams::small();
    let fabric = dcn_topology::Fabric::build_four_tier(p4);
    let addr = dcn_topology::Addressing::new(&fabric);
    // Rack 11 (zone 1) → last rack (zone 2): must traverse all 4 tiers.
    let src = fabric.server(0, 0, 0);
    let dst_tor = fabric.tor(p4.pods() - 1, p4.tors_per_pod - 1);
    let dst_ip = addr.server_addr(dst_tor, 0).unwrap();
    let mut spec = SendSpec::new(dst_ip, secs(3), secs(4));
    spec.count = 200;
    let mut built = build_four_tier_sim(p4, Stack::Mrmtp, 1, &[(src, spec)]);
    built.sim.run_until(secs(5));
    let sent = built.host(src).sent();
    assert_eq!(sent, 200);
    let dst = fabric.server(p4.pods() - 1, p4.tors_per_pod - 1, 0);
    let report = built
        .sim
        .node_as::<TrafficHost>(NodeId(dst as u32))
        .unwrap()
        .report(sent);
    assert_eq!(report.lost(), 0, "cross-zone delivery: {report:?}");
}

#[test]
fn bgp_converges_on_four_tiers() {
    let p4 = FourTierParams::small();
    let mut built = build_four_tier_sim(p4, Stack::BgpEcmp, 1, &[]);
    built.sim.run_until(secs(6));
    for r in built.fabric.routers() {
        let router = built.bgp(r);
        let expected_sessions = built.fabric.ports[r]
            .iter()
            .filter(|p| !matches!(p.kind, PortKind::Host))
            .count();
        assert_eq!(
            router.established_sessions(),
            expected_sessions,
            "{}",
            router.name()
        );
        let reach = router.rib().learned_prefixes().len() + router.rib().local_prefixes().len();
        assert_eq!(reach, 8, "{} must reach all racks", router.name());
    }
}

#[test]
fn four_tier_failures_stay_contained() {
    // TC4 now fails Z-1-1's downlink to S-1-1. MR-MTP: Z-1-1 loses PoD-1
    // roots via that port but still holds them? No — one downlink per
    // PoD, so the roots are gone; the loss propagates to the *other*
    // PoD-1-adjacent spines in zone 1 only. The rest of the fabric
    // (other zone!) is untouched.
    let p4 = FourTierParams::small();
    let mut built = build_four_tier_sim(p4, Stack::Mrmtp, 3, &[]);
    built.sim.run_until(secs(3));
    let (node, port) = built.fabric.failure_point(FailureCase::Tc4);
    built
        .sim
        .schedule_port_down(secs(3), NodeId(node as u32), PortId(port as u16));
    built.sim.run_until(secs(5));
    let affected = dcn_metrics::blast_radius(built.sim.trace(), secs(3));
    let routers = built.fabric.num_routers();
    assert!(
        affected > 0 && affected <= 4,
        "zone-local containment: {affected} of {routers} routers"
    );
    // Zone 2's spines saw nothing.
    for m in 0..p4.zone_width() {
        let zs = built.mrmtp(built.fabric.zone_spine(1, m));
        assert_eq!(
            zs.vid_table().negative_entry_count(),
            0,
            "{} is outside the blast radius",
            zs.name()
        );
    }
}
