//! Fabric-wide invariants under many concurrent flows: all-pairs
//! reachability for both stacks, hop-count bounds (loop freedom), and
//! MR-MTP's hello suppression under data load.

use dcn_experiments::{build_sim, flows::pin_flow, Stack};
use dcn_mrmtp::MrmtpRouter;
use dcn_sim::time::{millis, secs};
use dcn_sim::{FrameClass, NodeId, PortId, TraceEvent};
use dcn_topology::{ClosParams, Fabric};
use dcn_traffic::{SendSpec, TrafficHost};

/// Every server sends to the "next" server (a full cycle over all racks):
/// everything must arrive on a healthy fabric, for both protocol stacks.
fn all_pairs_cycle(stack: Stack) {
    let params = ClosParams::four_pod();
    let fabric = Fabric::build(params);
    let addr = dcn_topology::Addressing::new(&fabric);
    let servers: Vec<usize> = (0..params.pods)
        .flat_map(|p| (0..params.tors_per_pod).map(move |t| (p, t)))
        .map(|(p, t)| fabric.server(p, t, 0))
        .collect();
    let ips: Vec<_> = (0..params.pods)
        .flat_map(|p| (0..params.tors_per_pod).map(move |t| (p, t)))
        .map(|(p, t)| addr.server_addr(fabric.tor(p, t), 0).unwrap())
        .collect();
    let mut senders = Vec::new();
    for (i, &node) in servers.iter().enumerate() {
        let dst = ips[(i + 3) % ips.len()]; // skip-3 cycle crosses PoDs
        let mut spec = SendSpec::new(dst, secs(5), secs(7));
        spec.interval = millis(10);
        spec.count = 100;
        // Spread over the fabric rather than pinning to one chain.
        spec.src_port = 5000 + i as u16;
        senders.push((node, spec));
    }
    let mut built = build_sim(params, stack, 21, &senders);
    built.sim.run_until(secs(9));
    for (i, &node) in servers.iter().enumerate() {
        let sent = built.host(node).sent();
        assert_eq!(sent, 100, "sender {i} finished");
        let receiver = servers[(i + 3) % servers.len()];
        let report = built
            .sim
            .node_as::<TrafficHost>(NodeId(receiver as u32))
            .unwrap()
            .report(sent);
        assert_eq!(
            report.lost(),
            0,
            "{}: flow {i} lost packets: {report:?}",
            stack.label()
        );
        assert_eq!(report.duplicates, 0, "no duplication on a healthy fabric");
        assert_eq!(report.out_of_order, 0, "single-path flows stay ordered");
    }
}

#[test]
fn all_pairs_reachable_mrmtp() {
    all_pairs_cycle(Stack::Mrmtp);
}

#[test]
fn all_pairs_reachable_bgp() {
    all_pairs_cycle(Stack::BgpEcmp);
}

/// Loop freedom, observably: the total number of data-plane forwarding
/// operations per delivered packet is bounded by the fabric diameter
/// (ToR → spine → top → spine → ToR = at most 4 router-to-router hops +
/// 1 rack delivery). A forwarding loop would blow well past this.
#[test]
fn mrmtp_hop_count_is_diameter_bounded() {
    let params = ClosParams::two_pod();
    let fabric = Fabric::build(params);
    let addr = dcn_topology::Addressing::new(&fabric);
    let src = fabric.server(0, 0, 0);
    let dst_ip = addr.server_addr(fabric.tor(1, 1), 0).unwrap();
    let src_ip = addr.server_addr(fabric.tor(0, 0), 0).unwrap();
    let (sp, dp) = pin_flow(src_ip, dst_ip, &[2, 2]);
    let mut spec = SendSpec::new(dst_ip, secs(3), secs(4));
    spec.count = 500;
    spec.interval = millis(2);
    spec.src_port = sp;
    spec.dst_port = dp;
    let mut built = build_sim(params, Stack::Mrmtp, 33, &[(src, spec)]);
    built.sim.run_until(secs(5));
    let mut total_forwards = 0u64;
    let mut total_delivered = 0u64;
    for r in built.fabric.routers() {
        let router: &MrmtpRouter = built.mrmtp(r);
        total_forwards += router.stats().data_forwarded;
        total_delivered += router.stats().data_delivered;
    }
    assert_eq!(total_delivered, 500, "all packets handed to the server");
    // Cross-PoD path: ToR encap + 3 transit forwards = 4 forwarding ops.
    assert_eq!(
        total_forwards, 500 * 4,
        "exactly diameter-many forwards per packet (no loops, no detours)"
    );
}

/// The paper's §IV-B economy: under data load, MR-MTP hellos vanish from
/// the loaded link but persist on idle links.
#[test]
fn hellos_are_suppressed_only_on_loaded_links() {
    let params = ClosParams::two_pod();
    let fabric = Fabric::build(params);
    let addr = dcn_topology::Addressing::new(&fabric);
    let src = fabric.server(0, 0, 0);
    let src_ip = addr.server_addr(fabric.tor(0, 0), 0).unwrap();
    let dst_ip = addr.server_addr(fabric.tor(1, 1), 0).unwrap();
    let (sp, dp) = pin_flow(src_ip, dst_ip, &[2, 2]);
    let mut spec = SendSpec::new(dst_ip, secs(3), secs(6));
    spec.src_port = sp;
    spec.dst_port = dp;
    let mut built = build_sim(params, Stack::Mrmtp, 8, &[(src, spec)]);
    built.sim.run_until(secs(6));
    let tor = built.fabric.tor(0, 0);
    let count_hellos = |port: u16| {
        built
            .sim
            .trace()
            .events_since(secs(4))
            .filter(|e| {
                matches!(e, TraceEvent::FrameSent { time, node, port: p, class: FrameClass::Keepalive, .. }
                    if *time < secs(6) && *node == NodeId(tor as u32) && *p == PortId(port))
            })
            .count()
    };
    // Port 0 carries the pinned 333 pkt/s flow: zero explicit hellos.
    assert_eq!(count_hellos(0), 0, "loaded link needs no hellos");
    // Port 1 (the idle uplink) still hellos at 20/s.
    let idle = count_hellos(1);
    assert!((30..=50).contains(&idle), "idle link hellos ≈ 40 in 2 s: {idle}");
}
