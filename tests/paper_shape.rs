//! Cross-crate integration tests: the reproduced evaluation must show the
//! paper's *shapes* — who wins, by roughly what factor, and where the
//! crossovers fall (DESIGN.md §4 lists the tolerances).

use dcn_experiments::{run, RunSpec, Stack, TrafficDir};
use dcn_topology::{ClosParams, FailureCase};

fn scenario(stack: Stack, tc: FailureCase, dir: TrafficDir) -> RunSpec {
    RunSpec::new(ClosParams::two_pod(), stack)
        .failing(tc)
        .with_traffic(dir)
}

#[test]
fn fig4_convergence_ordering_on_timeout_detected_failures() {
    // TC1: the updating router must wait out its dead/hold timer. The
    // paper's headline: MR-MTP ≪ BGP+BFD ≪ BGP.
    let mtp = run(scenario(Stack::Mrmtp, FailureCase::Tc1, TrafficDir::None))
        .convergence_ms
        .unwrap();
    let bfd = run(scenario(Stack::BgpEcmpBfd, FailureCase::Tc1, TrafficDir::None))
        .convergence_ms
        .unwrap();
    let bgp = run(scenario(Stack::BgpEcmp, FailureCase::Tc1, TrafficDir::None))
        .convergence_ms
        .unwrap();
    assert!(
        mtp < bfd && bfd < bgp,
        "ordering violated: mtp={mtp} bfd={bfd} bgp={bgp}"
    );
    // Timer-derived magnitudes: MR-MTP ≈ its 100 ms dead interval (minus
    // up to one 50 ms hello of phase, exactly as on the testbed);
    // BGP+BFD ≈ its 300 ms detection time; BGP ≈ its 3 s hold timer.
    assert!((40.0..200.0).contains(&mtp), "mtp={mtp}");
    assert!((200.0..400.0).contains(&bfd), "bfd={bfd}");
    assert!((1500.0..3200.0).contains(&bgp), "bgp={bgp}");
}

#[test]
fn fig4_carrier_detected_failures_converge_faster_than_detection() {
    // TC2/TC4: the router that must change its forwarding sees carrier
    // loss; the paper observes convergence below the failure-detection
    // time for every stack.
    for stack in Stack::ALL {
        for tc in [FailureCase::Tc2, FailureCase::Tc4] {
            let c = run(scenario(stack, tc, TrafficDir::None))
                .convergence_ms
                .unwrap();
            assert!(
                c < 50.0,
                "{} {} should converge in ms, got {c}",
                stack.label(),
                tc.label()
            );
        }
    }
}

#[test]
fn fig5_blast_radius_two_pod_shapes() {
    // MR-MTP matches the paper exactly; our BGP counting lands one below
    // the paper's 9 for TC1/TC2 (see DESIGN.md §5) but preserves the
    // TC1/TC2 ≫ TC3/TC4 structure and the MR-MTP advantage.
    let mtp_tc1 = run(scenario(Stack::Mrmtp, FailureCase::Tc1, TrafficDir::None)).blast_radius;
    let mtp_tc3 = run(scenario(Stack::Mrmtp, FailureCase::Tc3, TrafficDir::None)).blast_radius;
    let bgp_tc1 = run(scenario(Stack::BgpEcmp, FailureCase::Tc1, TrafficDir::None)).blast_radius;
    let bgp_tc3 = run(scenario(Stack::BgpEcmp, FailureCase::Tc3, TrafficDir::None)).blast_radius;
    assert_eq!(mtp_tc1, 3, "paper Fig. 5");
    assert_eq!(mtp_tc3, 1, "paper Fig. 5");
    assert_eq!(bgp_tc3, 3, "paper Fig. 5");
    assert!((8..=9).contains(&bgp_tc1), "paper says 9; counting rule gives {bgp_tc1}");
    assert!(bgp_tc1 > mtp_tc1);
    assert!(bgp_tc3 > mtp_tc3);
}

#[test]
fn fig5_blast_radius_four_pod_shapes() {
    let base = |stack, tc| {
        run(RunSpec::new(ClosParams::four_pod(), stack).failing(tc)).blast_radius
    };
    assert_eq!(base(Stack::Mrmtp, FailureCase::Tc1), 7);
    assert_eq!(base(Stack::Mrmtp, FailureCase::Tc4), 3);
    assert_eq!(base(Stack::BgpEcmp, FailureCase::Tc4), 5, "paper Fig. 5");
    assert!((14..=15).contains(&base(Stack::BgpEcmp, FailureCase::Tc1)));
}

#[test]
fn fig6_control_overhead_gap_and_scaling() {
    let mtp2 = run(scenario(Stack::Mrmtp, FailureCase::Tc1, TrafficDir::None)).control_bytes;
    let bgp2 = run(scenario(Stack::BgpEcmp, FailureCase::Tc1, TrafficDir::None)).control_bytes;
    let mtp4 = run(RunSpec::new(ClosParams::four_pod(), Stack::Mrmtp).failing(FailureCase::Tc1))
        .control_bytes;
    let bgp4 =
        run(RunSpec::new(ClosParams::four_pod(), Stack::BgpEcmp).failing(FailureCase::Tc1))
            .control_bytes;
    // Paper: 120→264 B for MR-MTP, 1023→2139 B for BGP (ours: ~133→285
    // and ~651→1395). The shape: BGP ≫ MR-MTP, and roughly 2× from 2-PoD
    // to 4-PoD for both.
    assert!(bgp2 >= 3 * mtp2, "bgp2={bgp2} mtp2={mtp2}");
    assert!(bgp4 >= 3 * mtp4, "bgp4={bgp4} mtp4={mtp4}");
    let mtp_growth = mtp4 as f64 / mtp2 as f64;
    let bgp_growth = bgp4 as f64 / bgp2 as f64;
    assert!((1.5..3.0).contains(&mtp_growth), "mtp growth {mtp_growth}");
    assert!((1.5..3.0).contains(&bgp_growth), "bgp growth {bgp_growth}");
    // Magnitudes near the paper's.
    assert!((60..=300).contains(&mtp2), "paper: 120 B; ours {mtp2}");
    assert!((400..=2200).contains(&bgp2), "paper: 1023 B; ours {bgp2}");
}

#[test]
fn fig7_loss_near_sender_ordering() {
    // Sender at rack 11 (close to the failures). TC2: the downstream
    // router (ToR₁₁) must time out ⇒ loss scales with the stack's
    // detection time. TC1: carrier-side reroute ⇒ near-zero loss.
    let l = |stack, tc| {
        run(scenario(stack, tc, TrafficDir::NearToFar))
            .loss
            .unwrap()
            .lost()
    };
    let mtp_tc2 = l(Stack::Mrmtp, FailureCase::Tc2);
    let bfd_tc2 = l(Stack::BgpEcmpBfd, FailureCase::Tc2);
    let bgp_tc2 = l(Stack::BgpEcmp, FailureCase::Tc2);
    assert!(
        mtp_tc2 < bfd_tc2 && bfd_tc2 < bgp_tc2,
        "loss ordering: mtp={mtp_tc2} bfd={bfd_tc2} bgp={bgp_tc2}"
    );
    assert!(bgp_tc2 > 300, "≈2-3 s of ≈333 pkt/s: {bgp_tc2}");
    assert!(mtp_tc2 < 60, "≈100 ms of ≈333 pkt/s: {mtp_tc2}");
    for stack in Stack::ALL {
        assert!(
            l(stack, FailureCase::Tc1) <= 5,
            "TC1 is carrier-detected at the sender-side ToR"
        );
    }
}

#[test]
fn fig8_loss_far_sender_flips_the_asymmetry() {
    // Sender at rack 14: now TC1/TC3 (whose timeout side forwards the
    // flow) hurt, while TC4's carrier side reroutes quickly.
    let l = |stack, tc| {
        run(scenario(stack, tc, TrafficDir::FarToNear))
            .loss
            .unwrap()
            .lost()
    };
    let mtp_tc3 = l(Stack::Mrmtp, FailureCase::Tc3);
    let bgp_tc3 = l(Stack::BgpEcmp, FailureCase::Tc3);
    assert!(mtp_tc3 > 0, "far traffic pays the dead-timer for TC3");
    assert!(bgp_tc3 > mtp_tc3, "BGP pays the hold timer: {bgp_tc3} vs {mtp_tc3}");
    let mtp_tc4 = l(Stack::Mrmtp, FailureCase::Tc4);
    assert!(
        mtp_tc4 <= mtp_tc3,
        "TC4's carrier-side reroute beats TC3's timeout: {mtp_tc4} vs {mtp_tc3}"
    );
}

#[test]
fn fig9_keepalive_frame_sizes_match_captures() {
    use dcn_experiments::Timing;
    let steady = |stack| {
        RunSpec::new(ClosParams::two_pod(), stack).seeded(5).timed(Timing::steady()).run()
    };
    let mtp = steady(Stack::Mrmtp).keepalive;
    assert_eq!(mtp.avg_frame_len, 60.0, "1-byte hello in a minimum frame");
    let bgp = steady(Stack::BgpEcmp).keepalive;
    assert_eq!(bgp.avg_frame_len, 85.0, "Fig. 9's 85-byte BGP keepalive");
    let bfd = steady(Stack::BgpEcmpBfd).keepalive;
    // Mixed 66-byte BFD (10/s) and 85-byte BGP (1/s) frames.
    assert!(
        (66.0..70.0).contains(&bfd.avg_frame_len),
        "BFD dominates: {}",
        bfd.avg_frame_len
    );
    assert!(bfd.frames > 5 * bgp.frames, "BFD at 100 ms vs BGP at 1 s");
}
