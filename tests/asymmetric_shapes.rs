//! Generality beyond the paper's 2-wide fabrics: wider ECMP fan-outs,
//! more racks per PoD, multiple servers per rack. Exercises VID port
//! labels above 2 and ECMP widths above 2 on both stacks.

use dcn_experiments::{build_sim, flows::pin_flow, run, RunSpec, Stack, TrafficDir};
use dcn_mrmtp::MrmtpRouter;
use dcn_sim::time::{millis, secs};
use dcn_sim::NodeId;
use dcn_topology::{ClosParams, FailureCase};
use dcn_traffic::{SendSpec, TrafficHost};

/// Three spines per PoD, three racks, one uplink each → 3 top spines,
/// 3-wide ECMP at the ToRs.
fn wide() -> ClosParams {
    ClosParams {
        pods: 3,
        spines_per_pod: 3,
        tors_per_pod: 3,
        uplinks_per_spine: 1,
        servers_per_tor: 2,
    }
}

#[test]
fn wide_fabric_builds_trees_with_high_port_labels() {
    let params = wide();
    let mut built = build_sim(params, Stack::Mrmtp, 4, &[]);
    built.sim.run_until(secs(3));
    // Each top spine holds one VID per ToR (9 racks).
    for k in 0..3 {
        let t: &MrmtpRouter = built.mrmtp(built.fabric.top_spine(k));
        assert_eq!(t.vid_table().own_entry_count(), 9, "{}", t.render_table());
    }
    // A third spine's VIDs use port label 3 (11.3, 12.3, 13.3).
    let s3 = built.mrmtp(built.fabric.pod_spine(0, 2));
    let rendered = s3.render_table();
    assert!(rendered.contains("11.3"), "port label 3: {rendered}");
}

#[test]
fn wide_fabric_delivers_between_second_servers() {
    let params = wide();
    let fabric = dcn_topology::Fabric::build(params);
    let addr = dcn_topology::Addressing::new(&fabric);
    // Second server of rack 11 → second server of the last rack.
    let src = fabric.server(0, 0, 1);
    let dst = fabric.server(2, 2, 1);
    let dst_ip = addr.server_addr(fabric.tor(2, 2), 1).unwrap();
    assert_eq!(dst_ip.to_string(), "192.168.19.2");
    let mut spec = SendSpec::new(dst_ip, secs(3), secs(4));
    spec.count = 50;
    spec.interval = millis(5);
    let mut built = build_sim(params, Stack::Mrmtp, 4, &[(src, spec)]);
    built.sim.run_until(secs(5));
    let report = built
        .sim
        .node_as::<TrafficHost>(NodeId(dst as u32))
        .unwrap()
        .report(built.host(src).sent());
    assert_eq!(report.lost(), 0, "{report:?}");
}

#[test]
fn wide_fabric_failure_metrics_stay_sane() {
    // With 3-wide ECMP, losing one of three planes leaves two: blast
    // radius logic and pinning generalize.
    for stack in [Stack::Mrmtp, Stack::BgpEcmp] {
        let mut s = RunSpec::new(wide(), stack)
            .failing(FailureCase::Tc1)
            .with_traffic(TrafficDir::NearToFar)
            .seeded(6);
        s.timing.post_failure = secs(4);
        let r = run(s);
        assert!(r.convergence_ms.is_some(), "{}", stack.label());
        assert!(r.blast_radius >= 1);
        let loss = r.loss.unwrap();
        assert!(
            loss.lost() < loss.sent / 2,
            "{}: flow recovers on surviving planes: {loss:?}",
            stack.label()
        );
    }
}

#[test]
fn pinning_works_for_three_wide_ecmp() {
    let a = dcn_wire::IpAddr4::new(192, 168, 11, 1);
    let b = dcn_wire::IpAddr4::new(192, 168, 19, 1);
    let (sp, dp) = pin_flow(a, b, &[3, 1]);
    let h = dcn_wire::flow_hash(a, b, dcn_wire::IPPROTO_UDP, sp, dp);
    assert_eq!(dcn_wire::ecmp_index(h, 3), 0);
    let _ = dp;
}
