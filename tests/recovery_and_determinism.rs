//! Cross-crate integration: failure *recovery* (interface comes back) and
//! bit-level determinism of whole scenarios.

use dcn_experiments::{build_sim, Stack};
use dcn_mrmtp::MrmtpRouter;
use dcn_bgp::BgpRouter;
use dcn_sim::time::secs;
use dcn_sim::{NodeId, PortId};
use dcn_topology::{ClosParams, FailureCase};

#[test]
fn mrmtp_full_fail_recover_cycle_restores_all_state() {
    let mut built = build_sim(ClosParams::two_pod(), Stack::Mrmtp, 7, &[]);
    built.sim.run_until(secs(2));
    let (node, port) = built.fabric.failure_point(FailureCase::Tc2);
    built
        .sim
        .schedule_port_down(secs(3), NodeId(node as u32), PortId(port as u16));
    built
        .sim
        .schedule_port_up(secs(5), NodeId(node as u32), PortId(port as u16));
    built.sim.run_until(secs(9));
    // Every top spine again holds one VID per ToR and no negatives remain
    // anywhere.
    for k in 0..4 {
        let t = built.mrmtp(built.fabric.top_spine(k));
        assert_eq!(t.vid_table().own_entry_count(), 4, "{}", t.name());
    }
    for r in built.fabric.routers() {
        let router = built.mrmtp(r);
        assert_eq!(
            router.vid_table().negative_entry_count(),
            0,
            "{} still has negatives:\n{}",
            router.name(),
            router.render_table()
        );
    }
}

#[test]
fn bgp_full_fail_recover_cycle_restores_all_routes() {
    let mut built = build_sim(ClosParams::two_pod(), Stack::BgpEcmp, 7, &[]);
    built.sim.run_until(secs(5));
    let (node, port) = built.fabric.failure_point(FailureCase::Tc1);
    built
        .sim
        .schedule_port_down(secs(6), NodeId(node as u32), PortId(port as u16));
    built
        .sim
        .schedule_port_up(secs(10), NodeId(node as u32), PortId(port as u16));
    built.sim.run_until(secs(18));
    for r in built.fabric.routers() {
        let router = built.bgp(r);
        let reachable = router.rib().learned_prefixes().len()
            + router.rib().local_prefixes().len();
        assert_eq!(reachable, 4, "{} must again reach all racks", router.name());
    }
    // And the failed session itself is back.
    let tor = built.bgp(built.fabric.tor(0, 0));
    assert_eq!(tor.established_sessions(), 2);
}

#[test]
fn bfd_guarded_sessions_also_recover() {
    let mut built = build_sim(ClosParams::two_pod(), Stack::BgpEcmpBfd, 7, &[]);
    built.sim.run_until(secs(5));
    let (node, port) = built.fabric.failure_point(FailureCase::Tc4);
    built
        .sim
        .schedule_port_down(secs(6), NodeId(node as u32), PortId(port as u16));
    built
        .sim
        .schedule_port_up(secs(8), NodeId(node as u32), PortId(port as u16));
    built.sim.run_until(secs(14));
    let top = built.bgp(built.fabric.top_spine(0));
    assert_eq!(top.established_sessions(), 2, "T-1's sessions are back");
}

#[test]
fn identical_seeds_give_identical_traces_and_stats() {
    let run_once = |seed: u64| {
        let mut built = build_sim(ClosParams::two_pod(), Stack::Mrmtp, seed, &[]);
        built.sim.run_until(secs(2));
        let (node, port) = built.fabric.failure_point(FailureCase::Tc1);
        built
            .sim
            .schedule_port_down(secs(3), NodeId(node as u32), PortId(port as u16));
        built.sim.run_until(secs(5));
        let events = built.sim.trace().len();
        let frames = built.sim.frames_delivered();
        let stats: Vec<u64> = built
            .fabric
            .routers()
            .map(|r| {
                let s = built.sim.node_as::<MrmtpRouter>(NodeId(r as u32)).unwrap().stats();
                s.hellos_sent + 1000 * s.updates_sent + 100_000 * s.negatives_installed
            })
            .collect();
        (events, frames, stats)
    };
    assert_eq!(run_once(1234), run_once(1234));
    // Different seed: still functionally converged, possibly different
    // event interleavings.
    let (_, frames_a, _) = run_once(1);
    assert!(frames_a > 0);
}

#[test]
fn bgp_determinism_across_runs() {
    let run_once = |seed: u64| {
        let mut built = build_sim(ClosParams::two_pod(), Stack::BgpEcmp, seed, &[]);
        built.sim.run_until(secs(6));
        let stats: Vec<(u64, u64)> = built
            .fabric
            .routers()
            .map(|r| {
                let s = built.sim.node_as::<BgpRouter>(NodeId(r as u32)).unwrap().stats();
                (s.updates_sent, s.keepalives_sent)
            })
            .collect();
        (built.sim.trace().len(), stats)
    };
    assert_eq!(run_once(99), run_once(99));
}
