//! `fcr` — folded-clos-routing command line.
//!
//! A thin front end over `dcn-experiments` for running reproduction
//! pieces without writing code:
//!
//! ```text
//! fcr figures                      # regenerate every paper figure
//! fcr scenario <stack> <tc> [near|far]   # one experiment, all metrics
//! fcr listings                     # Listings 1/2/3/5 artifacts
//! fcr sweep [max_pods]             # §IX PoD sweep + tier comparison
//! fcr ablations                    # design-choice ablations
//! fcr keepalive                    # Figs. 9–10 summary
//! fcr bench --scale 2,4,8,16       # scaling + scheduler benchmarks
//! fcr bench --traffic              # data-plane forwarding soak
//! fcr profile mrmtp tc1 --workers 4  # engine stall breakdown + Chrome trace
//! ```
//!
//! Stacks: `mrmtp`, `bgp`, `bgp-bfd`. Cases: `tc1`–`tc4`.

use std::path::PathBuf;

use dcn_experiments::campaign::{self, CampaignSpec};
use dcn_experiments::{ablations, bench, figures, run, RunSpec, Stack, TrafficDir};
use dcn_topology::{ClosParams, FailureCase};

/// Count heap allocations landing inside forwarding scopes, so
/// `fcr bench --traffic` reports a measured allocations-per-forwarded-
/// packet figure instead of a trivial zero.
#[global_allocator]
static ALLOC: dcn_sim::alloc_track::CountingAllocator =
    dcn_sim::alloc_track::CountingAllocator;

fn usage() -> ! {
    eprintln!(
        "usage: fcr <command>\n\
         \n\
         commands:\n\
         \x20 figures                       regenerate every paper figure\n\
         \x20 scenario <stack> <tc> [dir]   one experiment (stack: mrmtp|bgp|bgp-bfd;\n\
         \x20                               tc: tc1..tc4; dir: near|far, default near)\n\
         \x20   --pods N             fabric size in PoDs (even, default 2)\n\
         \x20   --seed N             seed (default 42)\n\
         \x20   --workers N          shards for the parallel engine (default 1 =\n\
         \x20                        sequential; digests are engine-blind)\n\
         \x20   --local-repair       enable in-data-plane local fast reroute\n\
         \x20   --telemetry-out DIR  also write the run's trace bundle under DIR\n\
         \x20   --profile-out DIR    also profile the engine and write\n\
         \x20                        perf_report.json + trace.chrome.json under DIR\n\
         \x20 profile <stack> <tc>          engine runtime profile of one scenario:\n\
         \x20                               per-shard stall breakdown, hot nodes,\n\
         \x20                               scheduler occupancy\n\
         \x20   --pods N             fabric size in PoDs (even, default 2)\n\
         \x20   --seed N             seed (default 42)\n\
         \x20   --workers N          shards for the parallel engine (default 1)\n\
         \x20   --compare A,B[,..]   profile once per worker count and print the\n\
         \x20                        stall tables side by side with deltas\n\
         \x20   --local-repair       enable in-data-plane local fast reroute\n\
         \x20   --out DIR            write perf_report.json (perf_report/v2) and\n\
         \x20                        trace.chrome.json (chrome://tracing / Perfetto;\n\
         \x20                        one w<N>/ subdir each with --compare)\n\
         \x20 report <stack> <tc>           convergence storyboard + per-router counters\n\
         \x20   --seed N             seed (default 42)\n\
         \x20   --workers N          shards for the parallel engine (default 1)\n\
         \x20   --local-repair       enable in-data-plane local fast reroute\n\
         \x20   --telemetry-out DIR  also write the run's trace bundle under DIR\n\
         \x20 listings                      Listings 1/2/3/5 artifacts\n\
         \x20 sweep [max_pods]              scalability sweep + tier comparison\n\
         \x20 ablations                     design-choice ablations\n\
         \x20 keepalive                     steady-state keep-alive summary\n\
         \x20 extended                      whole-node/multi-point failures + encap overhead\n\
         \x20 replicate [n]                 Fig. 4 averaged over n seeds\n\
         \x20   --workers N          shards for the parallel engine (default 1)\n\
         \x20   --local-repair       enable in-data-plane local fast reroute\n\
         \x20   --telemetry-out DIR  also write per-seed bundles for each stack on TC1\n\
         \x20 chaos [opts]                  randomized fault campaign with invariant checks\n\
         \x20   --seeds N        seeds per stack (default 64)\n\
         \x20   --base-seed N    first seed value (default 1)\n\
         \x20   --threads N      worker threads (default: all cores)\n\
         \x20   --stacks LIST    comma list of mrmtp|bgp|bgp-bfd (default mrmtp,bgp)\n\
         \x20   --flaps N        link flaps per schedule (default 6)\n\
         \x20   --crashes N      node crashes per schedule (default 1)\n\
         \x20   --k N            concurrent-failure burst size (default 2)\n\
         \x20   --loss-ppm N     frame loss during window (default 2000)\n\
         \x20   --corrupt-ppm N  frame corruption during window (default 10000)\n\
         \x20   --workers N      in-sim shards per run (default 1; campaign\n\
         \x20                    seeds already fan out across --threads)\n\
         \x20   --local-repair   enable local fast reroute (+ repair-loop invariant)\n\
         \x20   --traffic-pairs N  cross-pod background flows per schedule (default 0)\n\
         \x20   --no-determinism skip the double-run digest comparison\n\
         \x20   --telemetry-out DIR  write a replay bundle for every violating seed\n\
         \x20   --profile-out DIR    profile every run (digests unchanged) and write\n\
         \x20                        perf artifacts per (stack, seed) under DIR\n\
         \x20 campaign run <spec>           expand a campaign grid (spec JSON file, or\n\
         \x20                               'default' for 2,4-PoD x mrmtp,bgp x tc1,tc2\n\
         \x20                               x 3 seeds) across cores into a results store\n\
         \x20   --out DIR            store directory (required; must be fresh)\n\
         \x20   --threads N          campaign worker threads (default: all cores)\n\
         \x20   --seeds N            override the spec's seeds-per-point count\n\
         \x20   --quick              shortened per-run timeline (CI smoke)\n\
         \x20   --profile            profile every run (digests unchanged) and\n\
         \x20                        record stall breakdowns in the store\n\
         \x20 campaign report <store>       summary table of one results store\n\
         \x20 campaign diff <a> <b>         compare two stores run by run: any digest\n\
         \x20                               mismatch or >threshold metric drift fails\n\
         \x20                               (exit 1); coverage changes are reported\n\
         \x20   --threshold PCT      relative metric-drift tolerance in percent\n\
         \x20                        (default 5; digests are compared exactly)\n\
         \x20 bench [opts]                  scaling + scheduler benchmarks\n\
         \x20   --scale LIST     comma list of PoD counts (default 2,4,8,16,32,64)\n\
         \x20   --workers LIST   worker counts swept at each PoD count of at\n\
         \x20                    least 16 (default 1,2,4; 1 is always run and\n\
         \x20                    is the speedup baseline)\n\
         \x20   --traffic        forwarding soak instead: packets/sec and\n\
         \x20                    allocs per forwarded packet, fast vs slow path\n\
         \x20   --quick          short windows (CI smoke mode)\n\
         \x20   --out FILE       write BENCH_scale.json (or BENCH_traffic.json\n\
         \x20                    with --traffic) here (default stdout only)\n\
         \x20   --baseline FILE  fail (exit 1) on >20% throughput regression\n\
         \x20                    (--traffic also gates the loss-window probe)\n\
         \x20   --profile-out DIR  also write a full perf report + Chrome trace\n\
         \x20                    of the largest scale row under DIR"
    );
    std::process::exit(2);
}

fn parse_stack(s: &str) -> Stack {
    match s {
        "mrmtp" | "mtp" => Stack::Mrmtp,
        "bgp" => Stack::BgpEcmp,
        "bgp-bfd" | "bfd" => Stack::BgpEcmpBfd,
        other => {
            eprintln!("unknown stack {other:?} (mrmtp|bgp|bgp-bfd)");
            std::process::exit(2);
        }
    }
}

/// Flags shared by the single-run subcommands.
struct RunFlags {
    telemetry_out: Option<PathBuf>,
    profile_out: Option<PathBuf>,
    out: Option<PathBuf>,
    seed: Option<u64>,
    pods: Option<usize>,
    workers: usize,
    local_repair: bool,
    compare: Option<Vec<usize>>,
}

/// Pull `--telemetry-out DIR`, `--profile-out DIR`, `--out DIR`,
/// `--seed N`, `--pods N`, `--workers N` and `--local-repair` out of
/// `args`, returning the remaining positional arguments.
fn split_flags(args: &[String]) -> (Vec<&str>, RunFlags) {
    let mut positional = Vec::new();
    let mut flags = RunFlags {
        telemetry_out: None,
        profile_out: None,
        out: None,
        seed: None,
        pods: None,
        workers: 1,
        local_repair: false,
        compare: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--telemetry-out" => {
                let Some(dir) = args.get(i + 1) else { usage() };
                flags.telemetry_out = Some(PathBuf::from(dir));
                i += 2;
            }
            "--profile-out" => {
                let Some(dir) = args.get(i + 1) else { usage() };
                flags.profile_out = Some(PathBuf::from(dir));
                i += 2;
            }
            "--out" => {
                let Some(dir) = args.get(i + 1) else { usage() };
                flags.out = Some(PathBuf::from(dir));
                i += 2;
            }
            "--local-repair" => {
                flags.local_repair = true;
                i += 1;
            }
            "--seed" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else { usage() };
                flags.seed = Some(n);
                i += 2;
            }
            "--pods" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else { usage() };
                flags.pods = Some(n);
                i += 2;
            }
            "--workers" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else { usage() };
                dcn_experiments::warn_if_oversubscribed(n);
                flags.workers = n;
                i += 2;
            }
            "--compare" => {
                let list: Option<Vec<usize>> = args
                    .get(i + 1)
                    .map(|s| s.split(',').map(|w| w.trim().parse().ok().filter(|&w| w > 0)))
                    .and_then(|it| it.collect());
                let Some(list) = list.filter(|l| !l.is_empty()) else { usage() };
                flags.compare = Some(list);
                i += 2;
            }
            a => {
                positional.push(a);
                i += 1;
            }
        }
    }
    (positional, flags)
}

/// Resolve `--pods` into fabric parameters (2-PoD paper testbed default).
fn params_for(pods: Option<usize>) -> ClosParams {
    match pods {
        None | Some(2) => ClosParams::two_pod(),
        Some(p) => ClosParams::scaled(p).unwrap_or_else(|e| {
            eprintln!("--pods {p}: {e}");
            std::process::exit(2);
        }),
    }
}

fn parse_tc(s: &str) -> FailureCase {
    match s.to_ascii_lowercase().as_str() {
        "tc1" => FailureCase::Tc1,
        "tc2" => FailureCase::Tc2,
        "tc3" => FailureCase::Tc3,
        "tc4" => FailureCase::Tc4,
        other => {
            eprintln!("unknown failure case {other:?} (tc1..tc4)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = 42;
    match args.first().map(String::as_str) {
        Some("figures") => {
            eprintln!("running failure matrices (this fans out over all CPUs)…");
            let near = figures::failure_matrix(TrafficDir::NearToFar, seed);
            let far = figures::failure_matrix(TrafficDir::FarToNear, seed);
            println!("{}", figures::fig1_stack_comparison(seed).render());
            println!("{}", figures::fig4_convergence(&near).render());
            println!("{}", figures::fig5_blast_radius(&near).render());
            println!("{}", figures::fig6_control_overhead(&near).render());
            println!("{}", figures::fig_packet_loss(&near, true).render());
            println!("{}", figures::fig_packet_loss(&far, false).render());
            println!("{}", figures::fig9_keepalive(seed).render());
            println!("{}", figures::config_comparison().render());
            println!("{}", figures::table_size_comparison(seed).render());
        }
        Some("scenario") => {
            let (pos, flags) = split_flags(&args[1..]);
            let (Some(&stack), Some(&tc)) = (pos.first(), pos.get(1)) else { usage() };
            let dir = match pos.get(2).copied() {
                Some("far") => TrafficDir::FarToNear,
                _ => TrafficDir::NearToFar,
            };
            let s = RunSpec::new(params_for(flags.pods), parse_stack(stack))
                .failing(parse_tc(tc))
                .with_traffic(dir)
                .seeded(flags.seed.unwrap_or(seed))
                .with_local_repair(flags.local_repair)
                .with_workers(flags.workers);
            let r = if let Some(pdir) = flags.profile_out {
                // Profiled run: host-clock observation only, digests and
                // metrics identical to an unprofiled run.
                let p = dcn_experiments::run_profiled(
                    s.with_telemetry(dcn_telemetry::TelemetryConfig::default()),
                );
                eprint!("{}", p.report.render_text());
                let sub = pdir.join(format!("profile-{}-{}", stack, tc.to_ascii_lowercase()));
                match dcn_experiments::write_profile_artifacts(&p.report, &sub) {
                    Ok(paths) => {
                        for path in paths {
                            eprintln!("wrote {}", path.display());
                        }
                    }
                    Err(e) => eprintln!("profile write to {} failed: {e}", sub.display()),
                }
                if let Some(out) = flags.telemetry_out {
                    let sub = out.join(format!("scenario-{}-{}", stack, tc.to_ascii_lowercase()));
                    match dcn_experiments::bundle_from_profiled(&p, &s).write(&sub) {
                        Ok(_) => eprintln!("trace bundle written to {}", sub.display()),
                        Err(e) => eprintln!("bundle write to {} failed: {e}", sub.display()),
                    }
                }
                p.run.result
            } else {
                match flags.telemetry_out {
                    None => run(s),
                    Some(out) => {
                        // Instrumented run: identical event processing, plus
                        // a trace bundle on disk.
                        let ir = dcn_experiments::run_instrumented(
                            s.with_telemetry(dcn_telemetry::TelemetryConfig::default()),
                        );
                        let sub =
                            out.join(format!("scenario-{}-{}", stack, tc.to_ascii_lowercase()));
                        match dcn_experiments::bundle_from_run(&ir, &s).write(&sub) {
                            Ok(_) => eprintln!("trace bundle written to {}", sub.display()),
                            Err(e) => eprintln!("bundle write to {} failed: {e}", sub.display()),
                        }
                        ir.result
                    }
                }
            };
            println!("convergence_ms   {}", r.convergence_ms.map(|v| format!("{v:.1}")).unwrap_or("-".into()));
            println!("blast_radius     {}", r.blast_radius);
            println!("control_bytes    {}", r.control_bytes);
            println!("update_frames    {}", r.update_frames);
            if let Some(l) = r.loss {
                println!(
                    "packet_loss      {} / {} ({:.2}%)  dup {}  ooo {}",
                    l.lost(),
                    l.sent,
                    100.0 * l.loss_ratio(),
                    l.duplicates,
                    l.out_of_order
                );
            }
            println!(
                "keepalive        {:.0} B/s fabric-wide, {:.0} B/frame",
                r.keepalive.bytes_per_sec, r.keepalive.avg_frame_len
            );
            println!("post-failure frame classes:");
            for (class, frames, bytes) in &r.breakdown {
                println!("  {class:<10} {frames:>8} frames  {bytes:>10} B");
            }
        }
        Some("profile") => {
            let (pos, flags) = split_flags(&args[1..]);
            let (Some(&stack), Some(&tc)) = (pos.first(), pos.get(1)) else { usage() };
            let s = RunSpec::new(params_for(flags.pods), parse_stack(stack))
                .failing(parse_tc(tc))
                .with_traffic(TrafficDir::NearToFar)
                .seeded(flags.seed.unwrap_or(seed))
                .with_local_repair(flags.local_repair)
                .with_workers(flags.workers);
            if let Some(worker_list) = &flags.compare {
                for &w in worker_list {
                    dcn_experiments::warn_if_oversubscribed(w);
                }
                let runs = dcn_experiments::run_compare(s, worker_list);
                let reports: Vec<_> = runs.iter().map(|p| p.report.clone()).collect();
                print!("{}", dcn_telemetry::render_comparison(&reports));
                if let Some(dir) = flags.out {
                    for p in &runs {
                        let sub = dir.join(format!("w{}", p.report.workers));
                        match dcn_experiments::write_profile_artifacts(&p.report, &sub) {
                            Ok(paths) => {
                                for path in paths {
                                    eprintln!("wrote {}", path.display());
                                }
                            }
                            Err(e) => {
                                eprintln!("profile write to {} failed: {e}", sub.display());
                                std::process::exit(2);
                            }
                        }
                    }
                }
                return;
            }
            let p = dcn_experiments::run_profiled(s);
            print!("{}", p.report.render_text());
            if let Some(dir) = flags.out {
                match dcn_experiments::write_profile_artifacts(&p.report, &dir) {
                    Ok(paths) => {
                        for path in paths {
                            eprintln!("wrote {}", path.display());
                        }
                    }
                    Err(e) => {
                        eprintln!("profile write to {} failed: {e}", dir.display());
                        std::process::exit(2);
                    }
                }
            }
        }
        Some("report") => {
            let (pos, flags) = split_flags(&args[1..]);
            let (Some(&stack), Some(&tc)) = (pos.first(), pos.get(1)) else { usage() };
            let r = dcn_experiments::report::build_spec(
                RunSpec::new(ClosParams::two_pod(), parse_stack(stack))
                    .failing(parse_tc(tc))
                    .seeded(flags.seed.unwrap_or(seed))
                    .with_local_repair(flags.local_repair)
                    .with_workers(flags.workers),
            );
            print!("{}", r.text);
            if let Some(out) = flags.telemetry_out {
                let sub = out.join(format!("report-{}-{}", stack, tc.to_ascii_lowercase()));
                match dcn_experiments::bundle_from_run(&r.run, &r.spec).write(&sub) {
                    Ok(_) => eprintln!("trace bundle written to {}", sub.display()),
                    Err(e) => eprintln!("bundle write to {} failed: {e}", sub.display()),
                }
            }
        }
        Some("listings") => println!("{}", figures::render_listings(seed)),
        Some("sweep") => {
            let max: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
            let pods: Vec<usize> = (1..=max / 2).map(|i| i * 2).collect();
            println!("{}", figures::scale_sweep(&pods, seed).render());
            println!("{}", figures::tier_comparison(seed).render());
        }
        Some("extended") => {
            println!("{}", dcn_experiments::extended_failures::extended_failure_figure(seed).render());
            println!("{}", figures::encap_overhead_figure(seed).render());
        }
        Some("replicate") => {
            let (pos, flags) = split_flags(&args[1..]);
            let n: u64 = pos.first().and_then(|s| s.parse().ok()).unwrap_or(5);
            let seeds: Vec<u64> = (1..=n).collect();
            eprintln!("replicating Fig. 4 over {n} seeds…");
            println!(
                "{}",
                dcn_experiments::replicate::fig4_replicated(
                    &seeds,
                    flags.local_repair,
                    flags.workers,
                )
                .render()
            );
            if let Some(out) = flags.telemetry_out {
                // One instrumented replication per stack on the headline
                // case (TC1, 2-PoD), a bundle per seed.
                for stack in Stack::ALL {
                    let s = RunSpec::new(ClosParams::two_pod(), stack)
                        .failing(FailureCase::Tc1)
                        .with_local_repair(flags.local_repair)
                        .with_workers(flags.workers);
                    let r = dcn_experiments::replicate::run_replicated_instrumented(s, &seeds, &out);
                    if let Some(c) = r.convergence_ms {
                        eprintln!("{}: TC1 convergence {} ms", stack.label(), c.render(1));
                    }
                }
            }
        }
        Some("ablations") => {
            println!("{}", ablations::ablation_slow_to_accept(seed).render());
            println!("{}", ablations::ablation_loss_holddown(seed).render());
            println!("{}", ablations::sweep_mrmtp_hello(seed).render());
            println!("{}", ablations::sweep_bfd_interval(seed).render());
        }
        Some("chaos") => {
            let mut cfg = dcn_experiments::CampaignConfig::default();
            let mut i = 1;
            while i < args.len() {
                let val = |i: usize| -> &str {
                    args.get(i + 1).map(String::as_str).unwrap_or_else(|| usage())
                };
                match args[i].as_str() {
                    "--seeds" => cfg.seeds = val(i).parse().unwrap_or_else(|_| usage()),
                    "--base-seed" => cfg.base_seed = val(i).parse().unwrap_or_else(|_| usage()),
                    "--threads" => cfg.threads = val(i).parse().unwrap_or_else(|_| usage()),
                    "--stacks" => cfg.stacks = val(i).split(',').map(parse_stack).collect(),
                    "--flaps" => cfg.chaos.flaps = val(i).parse().unwrap_or_else(|_| usage()),
                    "--crashes" => cfg.chaos.crashes = val(i).parse().unwrap_or_else(|_| usage()),
                    "--k" => cfg.chaos.k_concurrent = val(i).parse().unwrap_or_else(|_| usage()),
                    "--loss-ppm" => {
                        cfg.chaos.impairment.loss_ppm = val(i).parse().unwrap_or_else(|_| usage())
                    }
                    "--corrupt-ppm" => {
                        cfg.chaos.impairment.corrupt_ppm =
                            val(i).parse().unwrap_or_else(|_| usage())
                    }
                    "--workers" => {
                        cfg.chaos.workers = val(i).parse().unwrap_or_else(|_| usage());
                        dcn_experiments::warn_if_oversubscribed(cfg.chaos.workers);
                    }
                    "--local-repair" => {
                        cfg.chaos.local_repair = true;
                        i += 1;
                        continue;
                    }
                    "--traffic-pairs" => {
                        cfg.chaos.traffic_pairs = val(i).parse().unwrap_or_else(|_| usage())
                    }
                    "--no-determinism" => {
                        cfg.check_determinism = false;
                        i += 1;
                        continue;
                    }
                    "--telemetry-out" => cfg.telemetry_out = Some(PathBuf::from(val(i))),
                    "--profile-out" => cfg.profile_out = Some(PathBuf::from(val(i))),
                    _ => usage(),
                }
                i += 2;
            }
            if cfg.seeds == 0 || cfg.stacks.is_empty() {
                eprintln!("chaos: need at least one seed and one stack");
                std::process::exit(2);
            }
            eprintln!(
                "chaos campaign: {} seeds × {} stacks (determinism check: {})…",
                cfg.seeds,
                cfg.stacks.len(),
                if cfg.check_determinism { "on" } else { "off" }
            );
            let result = dcn_experiments::chaos::run_campaign(&cfg);
            println!("{}", dcn_experiments::chaos::campaign_summary(&cfg, &result).render());
            let v = result.violations();
            if v > 0 {
                eprintln!("FAIL: {v} invariant violation(s)");
                for r in result.runs.iter().filter(|r| r.violations() > 0) {
                    eprintln!(
                        "  seed {} stack {}: loops {} blackholes {} unreachable {} converged {} deterministic {}",
                        r.seed,
                        r.stack.label(),
                        r.loops,
                        r.black_holes,
                        r.unreachable_pairs,
                        r.converged,
                        r.deterministic
                    );
                }
                std::process::exit(1);
            }
            println!("OK: all invariants held across every seed");
        }
        Some("campaign") => {
            let action = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            match action {
                "run" => {
                    let mut spec_arg: Option<String> = None;
                    let mut out: Option<PathBuf> = None;
                    let mut threads = 0usize;
                    let mut seeds: Option<u64> = None;
                    let mut quick = false;
                    let mut profile = false;
                    let mut i = 2;
                    while i < args.len() {
                        let val = |i: usize| -> &str {
                            args.get(i + 1).map(String::as_str).unwrap_or_else(|| usage())
                        };
                        match args[i].as_str() {
                            "--out" => {
                                out = Some(PathBuf::from(val(i)));
                                i += 2;
                            }
                            "--threads" => {
                                threads = val(i).parse().unwrap_or_else(|_| usage());
                                dcn_experiments::warn_if_oversubscribed(threads);
                                i += 2;
                            }
                            "--seeds" => {
                                seeds = Some(val(i).parse().unwrap_or_else(|_| usage()));
                                i += 2;
                            }
                            "--quick" => {
                                quick = true;
                                i += 1;
                            }
                            "--profile" => {
                                profile = true;
                                i += 1;
                            }
                            a if spec_arg.is_none() && !a.starts_with("--") => {
                                spec_arg = Some(a.to_string());
                                i += 1;
                            }
                            _ => usage(),
                        }
                    }
                    let Some(out) = out else {
                        eprintln!("campaign run: --out DIR is required");
                        std::process::exit(2);
                    };
                    let mut spec = match spec_arg.as_deref() {
                        None | Some("default") => CampaignSpec::default(),
                        Some(path) => {
                            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                                eprintln!("campaign: read spec {path}: {e}");
                                std::process::exit(2);
                            });
                            CampaignSpec::parse(&text).unwrap_or_else(|e| {
                                eprintln!("campaign: {e}");
                                std::process::exit(2);
                            })
                        }
                    };
                    if let Some(n) = seeds {
                        spec.seeds = n;
                    }
                    spec.quick |= quick;
                    eprintln!(
                        "campaign {:?}: {} run(s) fanning out over {}…",
                        spec.name,
                        spec.total_runs(),
                        if threads == 0 { "all cores".to_string() } else { format!("{threads} thread(s)") },
                    );
                    match campaign::run_to_store(&spec, &out, threads, profile) {
                        Ok((store, records)) => {
                            println!("{}", campaign::summary(&records).render());
                            eprintln!("{} record(s) appended to {}", records.len(), store.dir().display());
                        }
                        Err(e) => {
                            eprintln!("campaign: {e}");
                            std::process::exit(2);
                        }
                    }
                }
                "report" => {
                    let Some(dir) = args.get(2) else { usage() };
                    let store = campaign::store::Store::open(&PathBuf::from(dir)).unwrap_or_else(|e| {
                        eprintln!("campaign: {e}");
                        std::process::exit(2);
                    });
                    let records = store.records().unwrap_or_else(|e| {
                        eprintln!("campaign: {e}");
                        std::process::exit(2);
                    });
                    let name = store
                        .index()
                        .ok()
                        .and_then(|ix| ix.get("name").and_then(|n| n.as_str().map(str::to_string)))
                        .unwrap_or_default();
                    eprintln!("store {:?}: {} record(s)", name, records.len());
                    println!("{}", campaign::summary(&records).render());
                }
                "diff" => {
                    let (Some(a), Some(b)) = (args.get(2), args.get(3)) else { usage() };
                    let mut threshold = 0.05;
                    let mut i = 4;
                    while i < args.len() {
                        match args[i].as_str() {
                            "--threshold" => {
                                let pct: f64 = args
                                    .get(i + 1)
                                    .and_then(|s| s.parse().ok())
                                    .unwrap_or_else(|| usage());
                                threshold = pct / 100.0;
                                i += 2;
                            }
                            _ => usage(),
                        }
                    }
                    let open_latest = |dir: &String| {
                        campaign::store::Store::open(&PathBuf::from(dir))
                            .and_then(|s| s.latest())
                            .unwrap_or_else(|e| {
                                eprintln!("campaign: {e}");
                                std::process::exit(2);
                            })
                    };
                    let report = campaign::diff::diff(&open_latest(a), &open_latest(b), threshold);
                    print!("{}", report.render());
                    if report.has_drift() {
                        std::process::exit(1);
                    }
                }
                _ => usage(),
            }
        }
        Some("keepalive") => {
            println!("{}", figures::fig9_keepalive(seed).render());
            println!("{}", figures::fig1_stack_comparison(seed).render());
        }
        Some("bench") => {
            let mut pods: Vec<usize> = vec![2, 4, 8, 16, 32, 64];
            let mut workers: Vec<usize> = vec![1, 2, 4];
            let mut quick = false;
            let mut traffic = false;
            let mut out: Option<PathBuf> = None;
            let mut baseline: Option<PathBuf> = None;
            let mut profile_out: Option<PathBuf> = None;
            let mut i = 1;
            while i < args.len() {
                let val = |i: usize| -> &str {
                    args.get(i + 1).map(String::as_str).unwrap_or_else(|| usage())
                };
                match args[i].as_str() {
                    "--scale" => {
                        pods = val(i)
                            .split(',')
                            .map(|p| p.parse().unwrap_or_else(|_| usage()))
                            .collect();
                        i += 2;
                    }
                    "--workers" => {
                        workers = val(i)
                            .split(',')
                            .map(|w| w.parse().unwrap_or_else(|_| usage()))
                            .collect();
                        for &w in &workers {
                            dcn_experiments::warn_if_oversubscribed(w);
                        }
                        i += 2;
                    }
                    "--quick" => {
                        quick = true;
                        i += 1;
                    }
                    "--traffic" => {
                        traffic = true;
                        i += 1;
                    }
                    "--out" => {
                        out = Some(PathBuf::from(val(i)));
                        i += 2;
                    }
                    "--baseline" => {
                        baseline = Some(PathBuf::from(val(i)));
                        i += 2;
                    }
                    "--profile-out" => {
                        profile_out = Some(PathBuf::from(val(i)));
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            let write_out = |json: String, out: Option<PathBuf>| {
                if let Some(path) = out {
                    if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
                        eprintln!("bench: write to {} failed: {e}", path.display());
                        std::process::exit(2);
                    }
                    eprintln!("wrote {}", path.display());
                }
            };
            let read_baseline = |path: &PathBuf| -> String {
                std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("bench: read baseline {} failed: {e}", path.display());
                    std::process::exit(2);
                })
            };
            if traffic {
                eprintln!(
                    "traffic soak at {pods:?} PoDs, fast path vs slow path ({})…",
                    if quick { "quick" } else { "full" }
                );
                let report = match bench::run_traffic_bench(&pods, quick, seed) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("bench: {e}");
                        std::process::exit(2);
                    }
                };
                print!("{}", report.render_text());
                write_out(report.to_json().render(), out);
                if let Some(path) = baseline {
                    match bench::check_traffic_regression(&report, &read_baseline(&path), 0.20) {
                        Ok(()) => eprintln!("no regression vs {}", path.display()),
                        Err(e) => {
                            eprintln!("FAIL: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                return;
            }
            eprintln!(
                "benchmarking scheduler + fabric scale at {pods:?} PoDs, \
                 worker sweep {workers:?} from {} PoDs ({})…",
                bench::WORKER_SWEEP_MIN_PODS,
                if quick { "quick" } else { "full" }
            );
            let report = match bench::run_bench(&pods, &workers, quick, seed) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("bench: {e}");
                    std::process::exit(2);
                }
            };
            print!("{}", report.render_text());
            write_out(report.to_json().render(), out);
            if let Some(path) = baseline {
                match bench::check_regression(&report, &read_baseline(&path), 0.20) {
                    Ok(()) => eprintln!("no regression vs {}", path.display()),
                    Err(e) => {
                        eprintln!("FAIL: {e}");
                        std::process::exit(1);
                    }
                }
            }
            if let Some(dir) = profile_out {
                // Full perf artifacts for the heaviest configuration in
                // the sweep: the point where stall attribution matters.
                let top_pods = pods.iter().copied().max().unwrap_or(2);
                let top_workers = workers.iter().copied().max().unwrap_or(1);
                eprintln!("profiling {top_pods} PoDs at {top_workers} worker(s)…");
                match bench::profile_scale_run(top_pods, top_workers, quick, seed) {
                    Ok(perf) => match dcn_experiments::write_profile_artifacts(&perf, &dir) {
                        Ok(paths) => {
                            for path in paths {
                                eprintln!("wrote {}", path.display());
                            }
                        }
                        Err(e) => {
                            eprintln!("bench: profile write to {} failed: {e}", dir.display());
                            std::process::exit(2);
                        }
                    },
                    Err(e) => {
                        eprintln!("bench: profile run failed: {e}");
                        std::process::exit(2);
                    }
                }
            }
        }
        _ => usage(),
    }
}
