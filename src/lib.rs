pub use dcn_experiments as experiments;
